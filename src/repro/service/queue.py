"""Request queue and batch scheduler: amortizing PCR across tenants.

One PCR access amplifies a whole block range regardless of how many
tenants asked for it (Section 3.1's prefix covers are shared physics, not
per-caller state).  The scheduler exploits that: all requests that arrive
within a scheduling window are coalesced, their per-partition block
ranges merged via :func:`repro.store.planner.merge_partition_ranges`
(overlap across tenants collapses), blocks already in the decoded-block
cache are subtracted, and a single shared :class:`BatchReadPlan` is
emitted for the cycle.  The plan's reaction/primer/block counts are the
wetlab bill the whole batch splits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.exceptions import ServiceError
from repro.service.cache import DecodedBlockCache
from repro.service.requests import ReadRequest
from repro.store.object_store import ObjectStore
from repro.store.planner import BatchReadPlan, plan_partition_ranges


class RequestQueue:
    """FIFO admission queue of pending read requests."""

    def __init__(self) -> None:
        self._pending: deque[ReadRequest] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, request: ReadRequest) -> None:
        """Admit one request at the tail of the queue."""
        self._pending.append(request)

    def drain(self) -> list[ReadRequest]:
        """Remove and return every pending request, oldest first."""
        drained = list(self._pending)
        self._pending.clear()
        return drained


@dataclass(frozen=True)
class ScheduledBatch:
    """One scheduling cycle's merged wetlab work.

    Attributes:
        batch_id: sequence number of the cycle.
        requests: the coalesced requests, in admission order.
        plan: the merged PCR plan covering every *uncached* block the
            batch needs (empty when the cache covers everything).
        requested_blocks: distinct ``(partition, block)`` keys the
            requests collectively asked for, in first-request order.
        pinned_payloads: key/payload pairs of the blocks found in the
            decoded-block cache at scheduling time, pinned so the batch's
            responses survive LRU evictions that happen while the cycle
            is in flight.
    """

    batch_id: int
    requests: tuple[ReadRequest, ...]
    plan: BatchReadPlan
    requested_blocks: tuple[tuple[str, int], ...]
    pinned_payloads: tuple[tuple[tuple[str, int], bytes], ...] = ()

    @property
    def cached_blocks(self) -> tuple[tuple[str, int], ...]:
        """The blocks served from the cache at scheduling time."""
        return tuple(key for key, _ in self.pinned_payloads)

    @property
    def requested_block_count(self) -> int:
        """Distinct blocks wanted by the batch (after cross-tenant dedup)."""
        return len(self.requested_blocks)

    @property
    def amplified_block_count(self) -> int:
        """Blocks the merged plan actually amplifies."""
        return self.plan.block_count

    @property
    def reaction_count(self) -> int:
        """PCR reactions of the merged plan."""
        return self.plan.reaction_count


class BatchScheduler:
    """Coalesces concurrent requests into one merged read plan per cycle."""

    def __init__(self, store: ObjectStore) -> None:
        self.store = store

    def request_blocks(self, request: ReadRequest) -> list[tuple[str, int]]:
        """The ``(partition, block)`` keys backing one request's range."""
        ranges = self.store.block_ranges(
            request.object_name, offset=request.offset, length=request.length
        )
        return [
            (partition, block)
            for partition, spans in ranges.items()
            for start, end in spans
            for block in range(start, end + 1)
        ]

    def schedule(
        self,
        requests: list[ReadRequest],
        *,
        cache: DecodedBlockCache | None = None,
        batch_id: int = 0,
        blocks_by_request: dict[int, list[tuple[str, int]]] | None = None,
    ) -> ScheduledBatch:
        """Merge a cycle's requests into one deduplicated wetlab plan.

        Args:
            blocks_by_request: optional precomputed block keys per
                ``request_id`` (the simulator computes them once at
                admission); missing entries are resolved here.

        Raises:
            ServiceError: if the cycle contains no requests.
        """
        if not requests:
            raise ServiceError("cannot schedule an empty batch")
        # Dicts (not sets) keep every derived ordering deterministic
        # across processes regardless of string-hash randomization.
        requested: dict[tuple[str, int], None] = {}
        for request in requests:
            keys = None
            if blocks_by_request is not None:
                keys = blocks_by_request.get(request.request_id)
            if keys is None:
                keys = self.request_blocks(request)
            for key in keys:
                requested.setdefault(key, None)
        pinned: dict[tuple[str, int], bytes] = {}
        missing: dict[str, list[tuple[int, int]]] = {}
        for partition, block in requested:
            if cache is not None and cache.contains(partition, block):
                # One counted hit per distinct block (misses are counted
                # at serve time, when the fill happens); the payload is
                # pinned so in-flight evictions cannot unserve the batch.
                pinned[(partition, block)] = cache.get(partition, block)
            else:
                missing.setdefault(partition, []).append((block, block))
        plan = plan_partition_ranges(
            self.store.volume,
            missing,  # per-partition ranges are merged by the planner
            label=f"batch-{batch_id:05d}",
        )
        return ScheduledBatch(
            batch_id=batch_id,
            requests=tuple(requests),
            plan=plan,
            requested_blocks=tuple(requested),
            pinned_payloads=tuple(pinned.items()),
        )
