"""Operation-agnostic request queue and batch scheduler.

One PCR access amplifies a whole block range regardless of how many
tenants asked for it (Section 3.1's prefix covers are shared physics, not
per-caller state).  The read side of the scheduler exploits that: all
reads that arrive within a scheduling window are coalesced, their
per-partition block ranges merged via
:func:`repro.store.planner.merge_partition_ranges` (overlap across
tenants collapses), blocks already in the decoded-block cache are
subtracted, and a single shared :class:`BatchReadPlan` is emitted for the
cycle.  The plan's reaction/primer/block counts are the wetlab bill the
whole batch splits.

The write side mirrors it: queued ``put``/``update``/``delete``
operations are applied to the store in admission order and coalesced into
one :class:`SynthesisOrder` per dispatch, whose per-partition
:class:`PartitionSynthesisJob` s size the strands (and nucleotides) the
vendor must manufacture — the synthesis bill the batch of writes splits,
charged latency the way read cycles are charged PCR + sequencing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DnaStorageError, ServiceError
from repro.service.cache import DecodedBlockCache
from repro.service.requests import ServiceRequest
from repro.store.object_store import ObjectStore
from repro.store.planner import BatchReadPlan, plan_partition_ranges


class RequestQueue:
    """FIFO admission queue of pending requests, any operation.

    ``drain`` empties the whole queue; ``drain_op``/``take`` remove
    selectively (the pipeline drains reads at each dispatch but leaves
    barrier-blocked writes queued for a later cycle).
    """

    def __init__(self) -> None:
        self._pending: list[ServiceRequest] = []

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, request: ServiceRequest) -> None:
        """Admit one request at the tail of the queue."""
        self._pending.append(request)

    def drain(self) -> list[ServiceRequest]:
        """Remove and return every pending request, oldest first."""
        drained = self._pending
        self._pending = []
        return drained

    def drain_op(self, op: str) -> list[ServiceRequest]:
        """Remove and return the pending requests of one operation."""
        return self.take(lambda request: request.op == op)

    def peek_op(self, op: str) -> list[ServiceRequest]:
        """The pending requests of one operation, oldest first, *not* removed.

        The QoS admission engine inspects the queued reads with this
        before deciding which subset to :meth:`take`; everything else
        keeps its queue position.
        """
        return [request for request in self._pending if request.op == op]

    def take(self, predicate) -> list[ServiceRequest]:
        """Remove and return the requests matching ``predicate`` (in order).

        Non-matching requests keep their relative order in the queue.  The
        predicate is evaluated exactly once per request, oldest first, so
        stateful predicates (e.g. "skip every write behind a blocked one")
        behave deterministically.
        """
        taken: list[ServiceRequest] = []
        kept: list[ServiceRequest] = []
        for request in self._pending:
            (taken if predicate(request) else kept).append(request)
        self._pending = kept
        return taken


@dataclass(frozen=True)
class ScheduledBatch:
    """One scheduling cycle's merged wetlab read work.

    Attributes:
        batch_id: sequence number of the cycle.
        requests: the coalesced requests, in admission order.
        plan: the merged PCR plan covering every *uncached* block the
            batch needs (empty when the cache covers everything).
        requested_blocks: distinct ``(partition, block)`` keys the
            requests collectively asked for, in first-request order.
        pinned_payloads: key/payload pairs of the blocks found in the
            decoded-block cache at scheduling time, pinned so the batch's
            responses survive LRU evictions that happen while the cycle
            is in flight.
    """

    batch_id: int
    requests: tuple[ServiceRequest, ...]
    plan: BatchReadPlan
    requested_blocks: tuple[tuple[str, int], ...]
    pinned_payloads: tuple[tuple[tuple[str, int], bytes], ...] = ()

    @property
    def cached_blocks(self) -> tuple[tuple[str, int], ...]:
        """The blocks served from the cache at scheduling time."""
        return tuple(key for key, _ in self.pinned_payloads)

    @property
    def requested_block_count(self) -> int:
        """Distinct blocks wanted by the batch (after cross-tenant dedup)."""
        return len(self.requested_blocks)

    @property
    def amplified_block_count(self) -> int:
        """Blocks the merged plan actually amplifies."""
        return self.plan.block_count

    @property
    def reaction_count(self) -> int:
        """PCR reactions of the merged plan."""
        return self.plan.reaction_count


@dataclass(frozen=True)
class WriteOutcome:
    """How one queued write fared when its synthesis order was formed.

    Attributes:
        request: the originating write request.
        applied: whether the store accepted the operation.
        reason: rejection reason when ``applied`` is False.
        partitions: partitions whose pools the write touched (their
            wetlab pools must re-synthesize).
        block_slots: block version slots the write synthesizes (new
            originals for a ``put``, patch slots for an ``update``).
        bytes_written: payload bytes accepted.
    """

    request: ServiceRequest
    applied: bool
    reason: str | None = None
    partitions: tuple[str, ...] = ()
    block_slots: int = 0
    bytes_written: int = 0


@dataclass(frozen=True)
class PartitionSynthesisJob:
    """One partition's slice of a synthesis order.

    Vendors manufacture each partition's strands as an independent array
    job, so jobs of the same order run concurrently — the order is
    complete when its slowest job delivers.
    """

    partition: str
    block_slots: int
    strands: int
    nucleotides: int


@dataclass(frozen=True)
class SynthesisOrder:
    """One dispatch's coalesced write work.

    Attributes:
        order_id: sequence number (shared with read cycles' batch ids).
        outcomes: per-request application outcomes, admission order.
        jobs: per-partition synthesis jobs, first-touch order.
    """

    order_id: int
    outcomes: tuple[WriteOutcome, ...] = ()
    jobs: tuple[PartitionSynthesisJob, ...] = field(default=())

    @property
    def applied(self) -> tuple[WriteOutcome, ...]:
        """The outcomes the store accepted."""
        return tuple(outcome for outcome in self.outcomes if outcome.applied)

    @property
    def strand_count(self) -> int:
        """Strands the order synthesizes."""
        return sum(job.strands for job in self.jobs)

    @property
    def nucleotide_count(self) -> int:
        """Bases the order synthesizes."""
        return sum(job.nucleotides for job in self.jobs)

    @property
    def partitions(self) -> tuple[str, ...]:
        """Partitions whose pools the order rewrites."""
        return tuple(job.partition for job in self.jobs)


class BatchScheduler:
    """Coalesces concurrent requests into merged wetlab work per cycle.

    Reads become one deduplicated :class:`ScheduledBatch`; writes become
    one per-partition-coalesced :class:`SynthesisOrder`.
    """

    def __init__(self, store: ObjectStore) -> None:
        self.store = store

    def request_blocks(
        self, request: ServiceRequest, *, at=None
    ) -> list[tuple[str, int]]:
        """The ``(partition, block)`` keys backing one request's range.

        Args:
            at: optional :class:`repro.store.snapshots.StoreSnapshot` for
                time-travel reads — the range is resolved against the
                snapshot's catalog.  Blocks unchanged since the capture
                keep their live keys, so historical and current requests
                coalesce into the same PCR accesses.
        """
        ranges = self.store.block_ranges(
            request.object_name, offset=request.offset, length=request.length, at=at
        )
        return [
            (partition, block)
            for partition, spans in ranges.items()
            for start, end in spans
            for block in range(start, end + 1)
        ]

    def schedule(
        self,
        requests: list[ServiceRequest],
        *,
        cache: DecodedBlockCache | None = None,
        batch_id: int = 0,
        blocks_by_request: dict[int, list[tuple[str, int]]] | None = None,
    ) -> ScheduledBatch:
        """Merge a cycle's read requests into one deduplicated wetlab plan.

        Args:
            blocks_by_request: optional precomputed block keys per
                ``request_id`` (the simulator computes them once at
                admission); missing entries are resolved here.

        Raises:
            ServiceError: if the cycle contains no requests or contains a
                write (writes go through :meth:`schedule_writes`).
        """
        if not requests:
            raise ServiceError("cannot schedule an empty batch")
        if any(request.is_write for request in requests):
            raise ServiceError(
                "write operations are scheduled as synthesis orders, "
                "not read batches"
            )
        # Dicts (not sets) keep every derived ordering deterministic
        # across processes regardless of string-hash randomization.
        requested: dict[tuple[str, int], None] = {}
        for request in requests:
            keys = None
            if blocks_by_request is not None:
                keys = blocks_by_request.get(request.request_id)
            if keys is None:
                keys = self.request_blocks(request)
            for key in keys:
                requested.setdefault(key, None)
        pinned: dict[tuple[str, int], bytes] = {}
        missing: dict[str, list[tuple[int, int]]] = {}
        volume = self.store.volume
        for partition, block in requested:
            # Cache keys carry the block's birth epoch so entries from an
            # earlier store generation (pre-restore) can never be served.
            epoch = volume.block_epoch(partition, block)
            if cache is not None and cache.contains(partition, block, epoch):
                # One counted hit per distinct block (misses are counted
                # at serve time, when the fill happens); the payload is
                # pinned so in-flight evictions cannot unserve the batch.
                pinned[(partition, block)] = cache.get(partition, block, epoch)
            else:
                missing.setdefault(partition, []).append((block, block))
        plan = plan_partition_ranges(
            self.store.volume,
            missing,  # per-partition ranges are merged by the planner
            label=f"batch-{batch_id:05d}",
        )
        return ScheduledBatch(
            batch_id=batch_id,
            requests=tuple(requests),
            plan=plan,
            requested_blocks=tuple(requested),
            pinned_payloads=tuple(pinned.items()),
        )

    def schedule_writes(
        self,
        requests: list[ServiceRequest],
        *,
        order_id: int = 0,
    ) -> SynthesisOrder:
        """Apply a cycle's writes and coalesce them into one synthesis order.

        Operations are applied to the store *digitally* here, in admission
        order — that is what sizes the order exactly (a ``put``'s striped
        extents, an ``update``'s actually-patched blocks) — but callers
        acknowledge the writes only when the order's synthesis latency has
        been charged.  A request the store rejects (duplicate name,
        exhausted update slots, range outside the object) fails alone: its
        outcome records the reason and every other write still applies.

        Raises:
            ServiceError: if the cycle is empty or contains a non-write.
        """
        if not requests:
            raise ServiceError("cannot schedule an empty synthesis order")
        if any(not request.is_write for request in requests):
            raise ServiceError("schedule_writes only accepts write operations")
        volume = self.store.volume
        outcomes: list[WriteOutcome] = []
        slots_by_partition: dict[str, int] = {}
        for request in requests:
            try:
                if request.op == "put":
                    record = self.store.put(request.object_name, request.payload)
                    touched: dict[str, int] = {}
                    for extent in record.extents:
                        touched[extent.partition] = (
                            touched.get(extent.partition, 0) + extent.block_count
                        )
                    bytes_written = len(request.payload)
                elif request.op == "update":
                    patched = self.store.update_blocks(
                        request.object_name, request.offset, request.payload
                    )
                    touched = {}
                    for partition_name, _ in patched:
                        touched[partition_name] = touched.get(partition_name, 0) + 1
                    bytes_written = len(request.payload)
                else:  # delete: catalog drop, no new strands
                    self.store.delete(request.object_name)
                    touched = {}
                    bytes_written = 0
            except DnaStorageError as exc:
                outcomes.append(
                    WriteOutcome(request=request, applied=False, reason=str(exc))
                )
                continue
            for partition_name, slots in touched.items():
                slots_by_partition[partition_name] = (
                    slots_by_partition.get(partition_name, 0) + slots
                )
            outcomes.append(
                WriteOutcome(
                    request=request,
                    applied=True,
                    partitions=tuple(touched),
                    block_slots=sum(touched.values()),
                    bytes_written=bytes_written,
                )
            )
        jobs = []
        for partition_name, slots in slots_by_partition.items():
            strands, nucleotides = volume.synthesis_footprint(slots)
            jobs.append(
                PartitionSynthesisJob(
                    partition=partition_name,
                    block_slots=slots,
                    strands=strands,
                    nucleotides=nucleotides,
                )
            )
        return SynthesisOrder(
            order_id=order_id, outcomes=tuple(outcomes), jobs=tuple(jobs)
        )
