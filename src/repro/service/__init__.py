"""repro.service — the multi-tenant serving layer above the object store.

The paper makes block access *precise* (Sections 3–6) and argues that
precision makes DNA storage economically servable (Sections 7.3–7.5);
this package supplies the layer that argument presumes: a request
front-end that amortizes each wetlab cycle across every concurrent
caller.

* :mod:`repro.service.requests` — read requests and served outcomes.
* :mod:`repro.service.queue` — :class:`RequestQueue` and
  :class:`BatchScheduler`: coalesce a scheduling window's requests,
  deduplicate overlapping per-partition block ranges across tenants, and
  emit one merged :class:`repro.store.planner.BatchReadPlan` per cycle.
* :mod:`repro.service.cache` — :class:`DecodedBlockCache`: a
  byte-bounded LRU over decoded blocks, so Zipfian-hot data
  (Section 7.7.4) skips the wetlab entirely.
* :mod:`repro.service.simulator` — :class:`ServiceSimulator`: a
  deterministic discrete-event loop that serves arrival traces under
  unbatched / batched / batched+cache policies and reports throughput,
  tail latency, cache hit rate and amplification waste.

Pure Python end to end — the serving layer imports only the sequencing
*models* (not the simulator), so it runs without numpy.
"""

from repro.service.cache import CacheStats, DecodedBlockCache, PinnedCacheView
from repro.service.queue import BatchScheduler, RequestQueue, ScheduledBatch
from repro.service.requests import CompletedRequest, FailedRequest, ReadRequest
from repro.service.simulator import (
    FIDELITIES,
    POLICIES,
    PolicyReport,
    ServiceConfig,
    ServiceSimulator,
    policy_latency_comparison,
)

__all__ = [
    "FIDELITIES",
    "POLICIES",
    "BatchScheduler",
    "CacheStats",
    "CompletedRequest",
    "DecodedBlockCache",
    "FailedRequest",
    "PinnedCacheView",
    "PolicyReport",
    "ReadRequest",
    "RequestQueue",
    "ScheduledBatch",
    "ServiceConfig",
    "ServiceSimulator",
    "policy_latency_comparison",
]
