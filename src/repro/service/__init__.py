"""repro.service — the multi-tenant serving layer above the object store.

The paper makes block access *precise* (Sections 3–6) and argues that
precision makes DNA storage economically servable (Sections 7.3–7.5);
this package supplies the layer that argument presumes: a request
front-end that amortizes each wetlab cycle across every concurrent
caller — for reads *and* writes.

* :mod:`repro.service.requests` — operation-agnostic requests
  (read/put/update/delete) and served outcomes.
* :mod:`repro.service.queue` — :class:`RequestQueue` and
  :class:`BatchScheduler`: coalesce a scheduling window's requests,
  deduplicate overlapping per-partition block ranges across tenants into
  one merged :class:`repro.store.planner.BatchReadPlan` per read cycle,
  and coalesce queued writes into per-partition
  :class:`SynthesisOrder` s.
* :mod:`repro.service.cache` — :class:`DecodedBlockCache`: a
  byte-bounded LRU over decoded blocks with an optional TinyLFU-style
  frequency-aware admission gate, so Zipfian-hot data (Section 7.7.4)
  skips the wetlab entirely and scans cannot flush it.
* :mod:`repro.service.simulator` — :class:`ServicePipeline` (alias
  ``ServiceSimulator``): a deterministic event-driven loop that serves
  mixed read/write arrival traces under unbatched / batched /
  batched+cache policies — with per-object read-after-write ordering,
  decode-failure retry cycles and a bounded wetlab lane pool — and
  reports throughput, tail latency, cache hit rate, synthesis volume and
  amplification waste.
* :mod:`repro.service.scheduler_qos` — :class:`SharedLanePool` (the
  run-global thermocycler/flow-cell lanes every cycle books onto, giving
  true per-lane utilization ≤ 1.0) and the tenant QoS admission layer:
  :class:`TenantQoS` profiles, token-bucket rate limits, priority
  classes and weighted-fair window shares
  (``ServiceConfig(qos=QoSConfig(...))``; default off, byte-identical
  per-request results either way).
* :mod:`repro.service.telemetry` — :class:`RunTelemetry`: the per-run
  recorder a traced pipeline run uses to build its span tree and metrics
  snapshot (``ServiceConfig(tracing=True)`` / ``REPRO_TRACING=1``; see
  :mod:`repro.observability`).

Pure Python end to end — the serving layer imports only the sequencing
*models* (not the simulator), so it runs without numpy.
"""

from repro.service.cache import (
    ADMISSION_POLICIES,
    CacheStats,
    DecodedBlockCache,
    FrequencySketch,
    PinnedCacheView,
)
from repro.service.queue import (
    BatchScheduler,
    PartitionSynthesisJob,
    RequestQueue,
    ScheduledBatch,
    SynthesisOrder,
    WriteOutcome,
)
from repro.service.requests import (
    OPERATIONS,
    WRITE_OPERATIONS,
    CompletedRequest,
    FailedRequest,
    ReadRequest,
    ServiceRequest,
)
from repro.service.scheduler_qos import (
    AdmissionDecision,
    QoSAdmission,
    QoSConfig,
    SharedLanePool,
    TenantQoS,
    TokenBucket,
    weighted_fair_shares,
)
from repro.service.simulator import (
    FIDELITIES,
    POLICIES,
    PolicyReport,
    ServiceConfig,
    ServicePipeline,
    ServiceSimulator,
    policy_latency_comparison,
    schedule_lanes,
)
from repro.service.telemetry import RunTelemetry

__all__ = [
    "ADMISSION_POLICIES",
    "FIDELITIES",
    "OPERATIONS",
    "POLICIES",
    "WRITE_OPERATIONS",
    "AdmissionDecision",
    "BatchScheduler",
    "CacheStats",
    "CompletedRequest",
    "DecodedBlockCache",
    "FailedRequest",
    "FrequencySketch",
    "PartitionSynthesisJob",
    "PinnedCacheView",
    "PolicyReport",
    "QoSAdmission",
    "QoSConfig",
    "ReadRequest",
    "RequestQueue",
    "RunTelemetry",
    "ScheduledBatch",
    "ServiceConfig",
    "ServicePipeline",
    "ServiceRequest",
    "ServiceSimulator",
    "SharedLanePool",
    "SynthesisOrder",
    "TenantQoS",
    "TokenBucket",
    "WriteOutcome",
    "policy_latency_comparison",
    "schedule_lanes",
    "weighted_fair_shares",
]
