"""Discrete-event simulator of the multi-tenant serving layer.

Drives a request arrival trace (:mod:`repro.workloads.service_traces`)
against an :class:`ObjectStore` under three serving policies and charges
every wetlab cycle the latency the paper's sequencing models predict
(Section 7.4, via :class:`IlluminaRunModel` / :class:`NanoporeRunModel`):

* ``unbatched`` — every request runs its own PCR + sequencing cycle, the
  one-synchronous-caller behaviour of ``ObjectStore.get``;
* ``batched`` — requests arriving within a scheduling window share one
  merged, cross-tenant-deduplicated cycle (:class:`BatchScheduler`);
* ``batched+cache`` — additionally, decoded blocks land in a
  :class:`DecodedBlockCache`, so hot blocks skip the wetlab entirely and
  fully-cached requests complete at memory speed.

The event loop is fully deterministic: simulated time only, ties broken
by admission order, no wall-clock or unseeded randomness anywhere.  Every
policy decodes byte-identical payloads (checksummed per request), so the
policies differ only in wetlab work and latency — which is exactly the
comparison reported: throughput, p50/p95/p99 latency
(:func:`repro.analysis.stats.summarize`), PCR reactions, sequenced reads,
cache hit rate and amplification waste.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.latency_model import LatencyComparison
from repro.analysis.stats import SummaryStats, summarize
from repro.exceptions import ServiceError
from repro.service.cache import CacheStats, DecodedBlockCache, PinnedCacheView
from repro.service.queue import BatchScheduler, RequestQueue, ScheduledBatch
from repro.service.requests import CompletedRequest, ReadRequest
from repro.store.object_store import ObjectStore
from repro.wetlab.sequencing import IlluminaRunModel, NanoporeRunModel
from repro.workloads.service_traces import RequestEvent

POLICIES = ("unbatched", "batched", "batched+cache")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the serving layer.

    Attributes:
        window_hours: scheduling window; requests arriving within it share
            one wetlab cycle (ignored by the unbatched policy).
        pcr_hours: wall-clock hours of one PCR stage (the cycle's
            reactions run in parallel on the thermocycler).
        reads_per_block: sequencing reads budgeted per amplified block —
            coverage for the block and its update slots (the paper decodes
            a block from ~30 precise-access reads, Section 7.3).
        sequencer: ``"nanopore"`` (streaming, latency scales with reads)
            or ``"illumina"`` (fixed-run, latency quantized in runs).
        cache_capacity_bytes: byte budget of the decoded-block cache.
        cache_service_hours: latency of a fully cache-served response.
        illumina / nanopore: the run models used to charge latency.
    """

    window_hours: float = 0.5
    pcr_hours: float = 2.0
    reads_per_block: int = 30
    sequencer: str = "nanopore"
    cache_capacity_bytes: int = 1 << 20
    cache_service_hours: float = 0.005
    illumina: IlluminaRunModel = field(default_factory=IlluminaRunModel)
    nanopore: NanoporeRunModel = field(default_factory=NanoporeRunModel)

    def __post_init__(self) -> None:
        if self.window_hours < 0:
            raise ServiceError("window_hours must be non-negative")
        if self.pcr_hours < 0 or self.cache_service_hours < 0:
            raise ServiceError("stage latencies must be non-negative")
        if self.reads_per_block <= 0:
            raise ServiceError("reads_per_block must be positive")
        if self.sequencer not in ("nanopore", "illumina"):
            raise ServiceError(f"unknown sequencer {self.sequencer!r}")
        if self.cache_capacity_bytes <= 0:
            raise ServiceError("cache_capacity_bytes must be positive")

    def sequencing_hours(self, reads: int) -> float:
        """Latency of producing ``reads`` reads on the configured model."""
        model = self.nanopore if self.sequencer == "nanopore" else self.illumina
        return model.latency_hours(reads)


@dataclass
class PolicyReport:
    """Aggregate outcome of serving one trace under one policy.

    Attributes:
        policy: the serving policy name.
        completed: every served request, in completion order.
        latency: p50/p95/p99-style summary of per-request latency hours.
        makespan_hours: time of the last delivery.
        throughput_per_hour: requests delivered per simulated hour.
        batches: wetlab cycles run (one per request when unbatched).
        pcr_reactions: total PCR reactions across all cycles.
        amplified_blocks: total blocks amplified across all cycles.
        requested_block_accesses: per-request block needs, duplicates
            included — the work a per-request policy would amplify.
        distinct_requested_blocks: distinct blocks the whole trace
            touched — the floor any policy could amplify.
        sequenced_reads: total sequencing reads charged.
        decoded_bytes: total payload bytes delivered.
        checksum: order-independent digest over per-request payload CRCs;
            equal checksums across policies mean identical decoded bytes.
        cache: cache counters (``batched+cache`` only).
        payloads: per-request payload bytes (only when ``keep_data``).
    """

    policy: str
    completed: tuple[CompletedRequest, ...]
    latency: SummaryStats
    makespan_hours: float
    throughput_per_hour: float
    batches: int
    pcr_reactions: int
    amplified_blocks: int
    requested_block_accesses: int
    distinct_requested_blocks: int
    sequenced_reads: int
    decoded_bytes: int
    checksum: int
    cache: CacheStats | None = None
    payloads: dict[int, bytes] | None = None

    @property
    def amplification_factor(self) -> float:
        """Amplified blocks per distinct requested block.

        1.0 means every block was amplified exactly once (perfect
        amortization); the unbatched policy pays this factor again for
        every duplicated request, a cache can push it below 1.0.
        """
        if self.distinct_requested_blocks == 0:
            return 0.0
        return self.amplified_blocks / self.distinct_requested_blocks


class _BatchScratch:
    """Per-batch decode memo for cache-less serving (block_cache protocol)."""

    def __init__(self) -> None:
        self._blocks: dict[tuple[str, int], bytes] = {}

    def get(self, partition: str, block: int) -> bytes | None:
        return self._blocks.get((partition, block))

    def put(self, partition: str, block: int, data: bytes) -> None:
        self._blocks[(partition, block)] = data


def policy_latency_comparison(
    baseline: PolicyReport, improved: PolicyReport
) -> LatencyComparison:
    """Mean-latency comparison between two policies (Section 7.4 framing)."""
    return LatencyComparison(
        baseline_hours=baseline.latency.mean,
        precise_hours=improved.latency.mean,
    )


class ServiceSimulator:
    """Deterministic discrete-event loop over a request arrival trace."""

    def __init__(self, store: ObjectStore, *, config: ServiceConfig | None = None):
        self.store = store
        self.config = config or ServiceConfig()
        self.scheduler = BatchScheduler(store)

    # ------------------------------------------------------------------
    # Wetlab charging
    # ------------------------------------------------------------------
    def _cycle_hours(self, batch: ScheduledBatch) -> float:
        """Latency of one wetlab cycle (PCR stage + sequencing)."""
        if batch.amplified_block_count == 0:
            # Fully cache-covered batches are served at dispatch and never
            # schedule a cycle; reaching here is a scheduling bug.
            raise ServiceError("an empty plan has no wetlab cycle to charge")
        reads = batch.amplified_block_count * self.config.reads_per_block
        return self.config.pcr_hours + self.config.sequencing_hours(reads)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Iterable[RequestEvent],
        policy: str,
        *,
        keep_data: bool = False,
    ) -> PolicyReport:
        """Serve a whole arrival trace under one policy.

        Args:
            trace: request events (need not be sorted).
            policy: one of :data:`POLICIES`.
            keep_data: retain per-request payload bytes in the report
                (tests only; defaults off to bound memory at scale).

        Raises:
            ServiceError: if the policy is unknown or the trace is empty.
        """
        if policy not in POLICIES:
            raise ServiceError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        events = sorted(trace, key=lambda event: event.time_hours)
        if not events:
            raise ServiceError("cannot simulate an empty trace")
        requests = [
            ReadRequest(
                request_id=index,
                tenant=event.tenant,
                object_name=event.object_name,
                offset=event.offset,
                length=event.length,
                arrival_hours=event.time_hours,
            )
            for index, event in enumerate(events)
        ]

        cache = (
            DecodedBlockCache(self.config.cache_capacity_bytes)
            if policy == "batched+cache"
            else None
        )
        queue = RequestQueue()
        sequence_counter = itertools.count()
        heap: list[tuple[float, int, str, object]] = [
            (request.arrival_hours, next(sequence_counter), "arrival", request)
            for request in requests
        ]
        heapq.heapify(heap)
        # Block addressing is computed once per request at admission and
        # shared with the scheduler (halves the extent-walk work).
        blocks_by_id: dict[int, list[tuple[str, int]]] = {}

        completed: list[CompletedRequest] = []
        payloads: dict[int, bytes] = {}
        distinct_requested: dict[tuple[str, int], None] = {}
        totals = {
            "batches": 0,
            "reactions": 0,
            "amplified": 0,
            "accesses": 0,
            "reads": 0,
            "bytes": 0,
        }
        dispatch_scheduled = False
        next_batch_id = 0

        def serve(
            request: ReadRequest,
            completion_hours: float,
            *,
            from_cache: bool,
            batch_id: int | None,
            block_cache=None,
        ) -> None:
            data = self.store.get(
                request.object_name,
                offset=request.offset,
                length=request.length,
                block_cache=block_cache if block_cache is not None else cache,
            )
            totals["bytes"] += len(data)
            if keep_data:
                payloads[request.request_id] = data
            completed.append(
                CompletedRequest(
                    request=request,
                    completion_hours=completion_hours,
                    byte_count=len(data),
                    checksum=zlib.crc32(data),
                    served_from_cache=from_cache,
                    batch_id=batch_id,
                )
            )

        def charge(batch: ScheduledBatch) -> None:
            # A dispatch fully covered by the cache is not a wetlab cycle.
            if batch.amplified_block_count > 0:
                totals["batches"] += 1
            totals["reactions"] += batch.reaction_count
            totals["amplified"] += batch.amplified_block_count
            totals["reads"] += (
                batch.amplified_block_count * self.config.reads_per_block
            )
            for key in batch.requested_blocks:
                distinct_requested.setdefault(key, None)

        def dispatch_batch(batch: ScheduledBatch, now: float) -> None:
            """Serve a scheduled batch: cache-covered requests leave at
            dispatch, the rest ride the wetlab cycle to completion."""
            charge(batch)
            if cache is not None:
                view = PinnedCacheView(cache, batch.pinned_payloads)
            else:
                # Cache-less policies still memoize decodes within the
                # batch (wall-clock only; no reported number depends on
                # it — work counters come from the plan).
                view = _BatchScratch()
            pinned_keys = frozenset(key for key, _ in batch.pinned_payloads)
            riders: list[ReadRequest] = []
            for request in batch.requests:
                # A request whose every block was pinned from the cache
                # needs no wetlab of its own: it is answered at dispatch,
                # at memory speed, not at the cycle's completion.
                if cache is not None and all(
                    key in pinned_keys
                    for key in blocks_by_id[request.request_id]
                ):
                    serve(
                        request,
                        now + self.config.cache_service_hours,
                        from_cache=True,
                        batch_id=None,
                        block_cache=view,
                    )
                else:
                    riders.append(request)
            if riders:
                heapq.heappush(
                    heap,
                    (
                        now + self._cycle_hours(batch),
                        next(sequence_counter),
                        "complete",
                        (batch, tuple(riders), view),
                    ),
                )

        def complete(
            batch: ScheduledBatch,
            riders: tuple[ReadRequest, ...],
            view,
            completion: float,
        ) -> None:
            # Serving (and therefore cache fill) happens at cycle
            # completion: blocks decoded by an in-flight cycle must not be
            # cache-visible before the cycle's sequencing finishes.  The
            # batch's schedule-time cache hits were pinned, so evictions
            # during the cycle cannot turn charged work into free reads.
            for request in riders:
                serve(
                    request,
                    completion,
                    from_cache=False,
                    batch_id=batch.batch_id,
                    block_cache=view,
                )

        while heap:
            now, _, kind, payload = heapq.heappop(heap)
            if kind == "arrival":
                request = payload
                blocks = self.scheduler.request_blocks(request)
                blocks_by_id[request.request_id] = blocks
                totals["accesses"] += len(blocks)
                if policy == "unbatched":
                    batch = self.scheduler.schedule(
                        [request],
                        batch_id=next_batch_id,
                        blocks_by_request=blocks_by_id,
                    )
                    next_batch_id += 1
                    dispatch_batch(batch, now)
                    continue
                if cache is not None and all(
                    cache.contains(partition, block) for partition, block in blocks
                ):
                    # Fast path: every block is hot; no wetlab, no window.
                    for key in blocks:
                        distinct_requested.setdefault(key, None)
                    serve(
                        request,
                        now + self.config.cache_service_hours,
                        from_cache=True,
                        batch_id=None,
                    )
                    continue
                queue.push(request)
                if not dispatch_scheduled:
                    heapq.heappush(
                        heap,
                        (
                            now + self.config.window_hours,
                            next(sequence_counter),
                            "dispatch",
                            None,
                        ),
                    )
                    dispatch_scheduled = True
            elif kind == "dispatch":
                dispatch_scheduled = False
                pending = queue.drain()
                if not pending:
                    continue
                batch = self.scheduler.schedule(
                    pending,
                    cache=cache,
                    batch_id=next_batch_id,
                    blocks_by_request=blocks_by_id,
                )
                next_batch_id += 1
                dispatch_batch(batch, now)
            else:  # complete: deliver the riders and publish their blocks
                batch, riders, view = payload
                complete(batch, riders, view, completion=now)

        checksum = 0
        for item in sorted(completed, key=lambda c: c.request.request_id):
            checksum = zlib.crc32(item.checksum.to_bytes(4, "big"), checksum)
        # The report lists deliveries in completion order (ties broken by
        # admission id); serves were recorded in event order, which may
        # run ahead for requests whose completion lies in the future.
        completed.sort(key=lambda c: (c.completion_hours, c.request.request_id))
        makespan = max(item.completion_hours for item in completed)
        return PolicyReport(
            policy=policy,
            completed=tuple(completed),
            latency=summarize([item.latency_hours for item in completed]),
            makespan_hours=makespan,
            throughput_per_hour=len(completed) / makespan if makespan else 0.0,
            batches=totals["batches"],
            pcr_reactions=totals["reactions"],
            amplified_blocks=totals["amplified"],
            requested_block_accesses=totals["accesses"],
            distinct_requested_blocks=len(distinct_requested),
            sequenced_reads=totals["reads"],
            decoded_bytes=totals["bytes"],
            checksum=checksum,
            cache=cache.stats if cache is not None else None,
            payloads=payloads if keep_data else None,
        )

    def compare(
        self, trace: Iterable[RequestEvent], *, policies: tuple[str, ...] = POLICIES
    ) -> dict[str, PolicyReport]:
        """Serve the same trace under several policies (fresh cache each).

        The store itself is read-only during simulation, so every policy
        sees identical object contents and must deliver identical bytes.
        """
        events = list(trace)
        return {policy: self.run(events, policy) for policy in policies}
