"""Event-driven pipeline simulator of the multi-tenant serving layer.

:class:`ServicePipeline` drives a request arrival trace
(:mod:`repro.workloads.service_traces`) — reads *and* writes — against an
:class:`ObjectStore` under three serving policies and charges every
wetlab cycle the latency the paper's sequencing models predict
(Section 7.4, via :class:`IlluminaRunModel` / :class:`NanoporeRunModel`):

* ``unbatched`` — every request runs its own wetlab cycle (or synthesis
  order), the one-synchronous-caller behaviour of ``ObjectStore.get``;
* ``batched`` — requests arriving within a scheduling window share one
  merged, cross-tenant-deduplicated cycle (:class:`BatchScheduler`);
* ``batched+cache`` — additionally, decoded blocks land in a
  :class:`DecodedBlockCache`, so hot blocks skip the wetlab entirely and
  fully-cached requests complete at memory speed.

**Writes** (``put`` / ``update`` / ``delete``) are queued like reads and
coalesced into per-partition :class:`SynthesisOrder` s charged synthesis
latency (array setup plus per-base manufacturing time) the way reads are
charged PCR + sequencing.  Per-object read/write ordering is enforced: a
read admitted while a write on its object is pending waits for the
write's synthesis to commit (so it observes the written bytes), and a
write waits for in-flight reads of its object before mutating the store —
no request ever observes a torn state.

**Wetlab cycles run on a shared, persistent lane pool**
(``config.wetlab_lanes``, one :class:`~repro.service.scheduler_qos.
SharedLanePool` per run): each cycle's per-partition accesses are
independent :class:`repro.wetlab.readout.ReadoutUnit` s (own PCR, own
sequencing sample) booked onto the lane that can start them earliest.
Lanes are physical stations shared by *every* cycle of the run —
overlapping cycles queue onto busy lanes instead of conjuring a fresh
pool, so a cycle completes when its slowest unit drains *including* the
time it waited for lane access, and per-lane busy time over the schedule
horizon is a true utilization ``<= 1.0``.  Unit seeding is
lane-independent: the decoded bytes are identical for any lane count.

**Tenant QoS is an optional admission layer** (``config.qos``, default
off): per-tenant token-bucket rate limits, priority/deadline classes and
weighted-fair division of a per-window block budget decide which queued
reads enter each batch (:class:`~repro.service.scheduler_qos.
QoSAdmission`); everything else stays queued for a later window.  Like
tracing, enabling QoS never changes a request's decoded bytes — the
per-object FIFO barrier pins what every read observes — it only reshapes
when work is admitted.  The unbatched policy has no admission window and
ignores QoS.

**Decode failures retry instead of aborting.**  Under
``fidelity="wetlab"``, a block that fails to decode no longer raises out
of the batch: requests needing it re-enter a retry cycle — fresh PCR,
fresh sequencing sample, coverage deepened by
``config.retry_coverage_factor`` per attempt — and only become
:class:`FailedRequest` outcomes once ``config.retry_budget`` retry cycles
are exhausted.  Requests of the same batch that don't need the failed
blocks are served on time.  ``config.decode_failure_injector`` can force
deterministic failures (tests, resilience benchmarks) under either
fidelity.

The event loop is fully deterministic: simulated time only, ties broken
by admission order, no wall-clock or unseeded randomness anywhere.  Every
policy decodes byte-identical payloads (checksummed per request), so the
policies differ only in wetlab work and latency — which is exactly the
comparison reported: throughput, p50/p95/p99 latency
(:func:`repro.analysis.stats.summarize`), PCR reactions, sequenced reads,
synthesis strands, cache hit rate and amplification waste.

Two *fidelities* of the read path are supported (orthogonal to policy):

* ``fidelity="reference"`` — payload bytes come from the digital
  reference (originals plus patch chains); wetlab work is only *charged*.
* ``fidelity="wetlab"`` — every scheduled cycle physically runs its
  units through simulated PCR amplification and sequencing-read sampling
  (:class:`repro.wetlab.readout.WetlabReadout`), decodes exactly the
  planned block set through clustering, trace reconstruction and
  Reed-Solomon (:meth:`ObjectStore.try_decode_blocks`), serves responses
  from those wetlab-decoded payloads and asserts each request's checksum
  against the reference path.  Requires numpy.

Malformed requests — negative ranges, unknown objects, ranges past the
object's end, writes the store rejects — fail *individually* (recorded as
:class:`FailedRequest` outcomes); they never abort other tenants'
requests.  Zero-length reads are valid empty reads served at front-end
speed with no wetlab work.

**Time-travel reads** (``ServiceRequest(op="read", as_of=hours)``) serve
an object as of the committed store state at a historical timestamp.
When a trace carries them, the pipeline snapshots the store at run start
and after every committed synthesis order (copy-on-write — no data is
copied, see :mod:`repro.store.snapshots`); an ``as_of`` read resolves
against the latest snapshot at or before its timestamp.  Historical
state is immutable, so such reads skip the per-object write barrier in
both directions: they never wait for a pending write and never delay
one.  Their blocks are physical strands still in the pool, so under
wetlab fidelity they amplify and decode like any other access — and
blocks unchanged since the capture share cache entries (and batched PCR
accesses) with live reads of the same data.

**``compare()`` runs every policy from one snapshotted seed store.**
The store is captured once (copy-on-write) and restored before each
policy × fidelity run, so mixed read/write traces no longer force a
full store rebuild per policy: every run starts from the byte-identical
seed state — allocation frontier, round-robin cursor, primers and seeds
included — at a fraction of the setup cost.  Read-only traces reproduce
the rebuild path's report bit for bit; traces with updates deliver the
same bytes, failures and synthesis volume, but lay the updates out as
copy-on-write redirects (fresh blocks) instead of in-place patch slots,
so PCR access counts and cycle latencies can differ from an
unsnapshotted store's.

``ServiceSimulator`` remains as an alias of :class:`ServicePipeline`.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.analysis.latency_model import LatencyComparison
from repro.analysis.stats import SummaryStats, summarize
from repro.exceptions import DnaStorageError, ServiceError
from repro.observability.export import RunObservability
from repro.observability.stages import collect_stages, record_stages
from repro.observability.tracing import activate, maybe_wall_span, tracing_enabled
from repro.service.cache import (
    ADMISSION_POLICIES,
    CacheStats,
    DecodedBlockCache,
    PinnedCacheView,
)
from repro.service.queue import (
    BatchScheduler,
    RequestQueue,
    ScheduledBatch,
    SynthesisOrder,
)
from repro.service.requests import CompletedRequest, FailedRequest, ServiceRequest
from repro.service.scheduler_qos import QoSAdmission, QoSConfig, SharedLanePool
from repro.service.telemetry import RunTelemetry
from repro.store.object_store import ObjectStore
from repro.store.planner import plan_partition_ranges, ranges_from_block_keys
from repro.wetlab.readout import plan_units
from repro.wetlab.sequencing import IlluminaRunModel, NanoporeRunModel
from repro.workloads.service_traces import RequestEvent

POLICIES = ("unbatched", "batched", "batched+cache")
FIDELITIES = ("reference", "wetlab")

#: Optional deterministic fault hook: ``(cycle_id, attempt, block_key) ->
#: bool`` — return True to force that block's decode to fail in that cycle.
DecodeFailureInjector = Callable[[int, int, "tuple[str, int]"], bool]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the serving layer.

    Attributes:
        window_hours: scheduling window; requests arriving within it share
            one wetlab cycle / synthesis order (ignored by the unbatched
            policy).
        pcr_hours: wall-clock hours of one PCR stage (each readout unit
            amplifies on its own lane's thermocycler).
        reads_per_block: sequencing reads budgeted per amplified block —
            coverage for the block and its update slots (the paper decodes
            a block from ~30 precise-access reads, Section 7.3).
        sequencer: ``"nanopore"`` (streaming, latency scales with reads)
            or ``"illumina"`` (fixed-run, latency quantized in runs).
        wetlab_lanes: thermocycler/flow-cell lanes of the run's *shared*
            pool; a cycle's readout units book onto the lane that can
            start them earliest, queueing behind earlier cycles' work
            (the pool is persistent hardware, not per-cycle), so the
            cycle's latency is its slowest unit's completion including
            lane-queue time.
        retry_budget: retry cycles a request may ride after its first
            cycle fails to decode a needed block (0 = fail immediately).
        retry_coverage_factor: sequencing-coverage multiplier applied per
            retry attempt (deeper coverage, fresh PCR).
        synthesis_setup_hours: fixed turnaround of one partition's
            synthesis job (array setup, QC, shipping).
        synthesis_hours_per_kilobase: marginal manufacturing time per
            1000 synthesized bases; a dispatch's per-partition jobs run in
            parallel at the vendor, so an order commits when its largest
            job delivers.
        cache_capacity_bytes: byte budget of the decoded-block cache.
        cache_admission: admission policy of the decoded-block cache
            (``"always"`` or frequency-aware ``"tinylfu"``).
        cache_service_hours: latency of a fully cache-served response
            (also the acknowledgment latency of synthesis-free writes,
            i.e. deletes).
        illumina / nanopore: the run models used to charge latency.
        wetlab_seed: base RNG seed of the default wetlab readout engine
            (synthesis skew, sequencing sampling) under
            ``fidelity="wetlab"``.
        decode_failure_injector: optional deterministic hook forcing
            block-decode failures (see :data:`DecodeFailureInjector`);
            honoured under both fidelities so retry accounting is testable
            without numpy.
        decode_workers: worker processes of the parallel decode engine
            used for wetlab-fidelity cycle decodes (``None`` defers to
            ``REPRO_DECODE_WORKERS``, then the CPU count; ``1`` = serial).
            Compute-side only: lane scheduling (wetlab time) is untouched,
            and decoded bytes are identical for any worker count.
        decode_shared_memory: ship large per-partition read batches to
            decode workers via ``multiprocessing.shared_memory`` (``None``
            defers to ``REPRO_DECODE_SHM``, default on).
        decode_cluster_shards: intra-partition clustering shard count of
            the decode engine (``None`` defers to ``REPRO_CLUSTER_SHARDS``,
            then 1 = unsharded).  Compute-side only, like
            ``decode_workers``: clusters and decoded bytes are
            byte-identical at any shard count.
        tracing: record the run's span tree and metrics registry
            (:mod:`repro.observability`) onto the report's
            ``observability`` field.  ``None`` defers to the
            ``REPRO_TRACING`` environment variable; the default is off
            and near-free.  Enabling tracing never changes request
            outcomes — it only observes them.
        qos: optional per-tenant QoS policy
            (:class:`~repro.service.scheduler_qos.QoSConfig`): token
            bucket rate limits, priority/deadline classes and
            weighted-fair admission of queued reads into each dispatch
            window.  Default off; like tracing, enabling it never
            changes decoded bytes — only when work is admitted.  Applies
            to the batched policies (the unbatched policy has no
            admission window); requires a positive ``window_hours``.
    """

    window_hours: float = 0.5
    pcr_hours: float = 2.0
    reads_per_block: int = 30
    sequencer: str = "nanopore"
    wetlab_lanes: int = 4
    retry_budget: int = 2
    retry_coverage_factor: float = 2.0
    synthesis_setup_hours: float = 12.0
    synthesis_hours_per_kilobase: float = 0.01
    cache_capacity_bytes: int = 1 << 20
    cache_admission: str = "always"
    cache_service_hours: float = 0.005
    illumina: IlluminaRunModel = field(default_factory=IlluminaRunModel)
    nanopore: NanoporeRunModel = field(default_factory=NanoporeRunModel)
    wetlab_seed: int = 0
    decode_failure_injector: DecodeFailureInjector | None = field(
        default=None, compare=False
    )
    decode_workers: int | None = None
    decode_shared_memory: bool | None = None
    decode_cluster_shards: int | None = None
    tracing: bool | None = None
    qos: QoSConfig | None = None

    def __post_init__(self) -> None:
        if self.window_hours < 0:
            raise ServiceError("window_hours must be non-negative")
        if self.pcr_hours < 0 or self.cache_service_hours < 0:
            raise ServiceError("stage latencies must be non-negative")
        if self.reads_per_block <= 0:
            raise ServiceError("reads_per_block must be positive")
        if self.sequencer not in ("nanopore", "illumina"):
            raise ServiceError(f"unknown sequencer {self.sequencer!r}")
        if self.wetlab_lanes <= 0:
            raise ServiceError("wetlab_lanes must be positive")
        if self.retry_budget < 0:
            raise ServiceError("retry_budget must be non-negative")
        if self.retry_coverage_factor < 1.0:
            raise ServiceError("retry_coverage_factor must be >= 1")
        if self.synthesis_setup_hours < 0 or self.synthesis_hours_per_kilobase < 0:
            raise ServiceError("synthesis latencies must be non-negative")
        if self.cache_capacity_bytes <= 0:
            raise ServiceError("cache_capacity_bytes must be positive")
        if self.cache_admission not in ADMISSION_POLICIES:
            raise ServiceError(
                f"unknown cache admission policy {self.cache_admission!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        if self.decode_workers is not None and self.decode_workers < 1:
            raise ServiceError("decode_workers must be >= 1 when set")
        if self.decode_cluster_shards is not None and self.decode_cluster_shards < 1:
            raise ServiceError("decode_cluster_shards must be >= 1 when set")
        if self.qos is not None and self.window_hours <= 0:
            # Deferred requests re-arm the dispatch one window later; a
            # zero-width window would re-run the same admission pass at
            # the same instant forever.
            raise ServiceError("qos admission requires a positive window_hours")

    def sequencing_hours(self, reads: int) -> float:
        """Latency of producing ``reads`` reads on the configured model."""
        model = self.nanopore if self.sequencer == "nanopore" else self.illumina
        return model.latency_hours(reads)

    def retry_reads_per_block(self, attempt: int) -> int:
        """Coverage of the ``attempt``-th cycle (1 = the original cycle)."""
        if attempt <= 1:
            return self.reads_per_block
        scaled = self.reads_per_block * self.retry_coverage_factor ** (attempt - 1)
        return max(int(scaled), self.reads_per_block + attempt - 1)


def schedule_lanes(
    durations: "list[float]", lane_count: int
) -> list[tuple[int, float, float]]:
    """Greedy earliest-free-lane packing of unit durations (one cycle).

    Units are assigned in submission order to the lane that frees up
    first (ties broken by lane index), mirroring a lab queueing jobs onto
    identical thermocycler/flow-cell stations.  Returns one
    ``(lane, start_hours, end_hours)`` tuple per unit, in unit order —
    fully deterministic for a given input.

    Times are relative to an empty pool: this is the standalone packing
    primitive.  The pipeline itself books cycles through a persistent
    :class:`~repro.service.scheduler_qos.SharedLanePool`, which is this
    same greedy rule applied to lanes whose free-at frontiers survive
    across cycles (an empty pool reproduces these schedules exactly).
    """
    if lane_count <= 0:
        raise ServiceError("lane_count must be positive")
    free = [0.0] * lane_count
    schedule: list[tuple[int, float, float]] = []
    for duration in durations:
        if duration < 0:
            raise ServiceError("unit durations must be non-negative")
        lane = min(range(lane_count), key=lambda index: (free[index], index))
        start = free[lane]
        free[lane] = start + duration
        schedule.append((lane, start, free[lane]))
    return schedule


@dataclass
class PolicyReport:
    """Aggregate outcome of serving one trace under one policy.

    Attributes:
        policy: the serving policy name.
        fidelity: read-path fidelity the trace was served under
            (``"reference"`` or ``"wetlab"``).
        completed: every served request — read responses and write
            acknowledgments — in completion order.
        failed: requests rejected without service (malformed range,
            unknown object, store-rejected write, retry budget exhausted),
            ordered by admission id; they are excluded from latency,
            throughput and checksum accounting.
        latency: p50/p95/p99-style summary of per-read latency, in
            **simulated hours** (see ``latency_clock``) — never host
            wall-clock.
        write_latency: the same summary over write acknowledgments
            (``None`` when the trace carried no writes).
        latency_clock: the clock every latency/makespan figure in this
            report is on (``"sim_hours"``); wall-clock compute lives only
            in ``observability`` spans/metrics, explicitly labelled.
        makespan_hours: time of the last delivery.
        throughput_per_hour: requests delivered per simulated hour.
        batches: wetlab read cycles run (retry cycles included).
        pcr_reactions: total PCR reactions across all cycles.
        amplified_blocks: total blocks amplified across all cycles.
        requested_block_accesses: per-request block needs, duplicates
            included — the work a per-request policy would amplify.
        distinct_requested_blocks: distinct blocks the whole trace
            touched — the floor any policy could amplify.
        sequenced_reads: total sequencing reads charged.
        decoded_bytes: total read payload bytes delivered.
        written_bytes: total write payload bytes acknowledged.
        synthesis_orders: synthesis orders dispatched for writes.
        synthesized_strands / synthesized_nucleotides: DNA manufacturing
            volume those orders charged.
        synthesis_hours: total synthesis latency charged across orders.
        retry_cycles: deeper-coverage retry cycles run after decode
            failures.
        retried_requests: request-retry events (one request retrying
            twice counts twice).
        decode_failures: block-decode failures observed (injected ones
            included).
        wetlab_lanes: lane-pool width the trace was served with.
        lane_busy_hours: summed busy time of all lanes (units' PCR +
            sequencing) across all cycles.
        lane_busy_hours_by_lane: the same busy time attributed to each
            individual lane (index = lane id), from the run's shared
            lane pool — busy intervals on one lane never overlap.
        lane_schedule_horizon_hours: the shared pool's last booked
            completion; the utilization denominator (equals the
            makespan except when a run's final cycle served nobody).
        qos_enabled: whether a QoS admission layer was active.
        qos_throttled: dispatch-time events where a token bucket held a
            queued read back (one request can count several times
            across consecutive windows).
        qos_deferred: dispatch-time events where the window block
            budget deferred an eligible read to a later window.
        deadline_violations: served reads that finished past their QoS
            deadline budget (request override or tenant profile);
            counted only, never dropped.  0 when QoS is off.
        checksum: order-independent digest over per-request payload CRCs;
            equal checksums across policies mean identical decoded bytes.
        cache: cache counters (``batched+cache`` only).
        payloads: per-read payload bytes (only when ``keep_data``).
        observability: the run's span tree and metrics snapshot
            (:class:`~repro.observability.export.RunObservability`);
            ``None`` unless tracing was enabled.  Excluded from report
            equality — observing a run is not part of its outcome.
    """

    policy: str
    completed: tuple[CompletedRequest, ...]
    latency: SummaryStats
    makespan_hours: float
    throughput_per_hour: float
    batches: int
    pcr_reactions: int
    amplified_blocks: int
    requested_block_accesses: int
    distinct_requested_blocks: int
    sequenced_reads: int
    decoded_bytes: int
    checksum: int
    fidelity: str = "reference"
    failed: tuple[FailedRequest, ...] = ()
    cache: CacheStats | None = None
    payloads: dict[int, bytes] | None = None
    write_latency: SummaryStats | None = None
    written_bytes: int = 0
    synthesis_orders: int = 0
    synthesized_strands: int = 0
    synthesized_nucleotides: int = 0
    synthesis_hours: float = 0.0
    retry_cycles: int = 0
    retried_requests: int = 0
    decode_failures: int = 0
    wetlab_lanes: int = 1
    lane_busy_hours: float = 0.0
    lane_busy_hours_by_lane: tuple[float, ...] = ()
    lane_schedule_horizon_hours: float = 0.0
    qos_enabled: bool = False
    qos_throttled: int = 0
    qos_deferred: int = 0
    deadline_violations: int = 0
    latency_clock: str = "sim_hours"
    observability: RunObservability | None = field(default=None, compare=False)

    @property
    def amplification_factor(self) -> float:
        """Amplified blocks per distinct requested block.

        1.0 means every block was amplified exactly once (perfect
        amortization); the unbatched policy pays this factor again for
        every duplicated request, a cache can push it below 1.0.
        """
        if self.distinct_requested_blocks == 0:
            return 0.0
        return self.amplified_blocks / self.distinct_requested_blocks

    @property
    def _lane_horizon(self) -> float:
        """Utilization denominator: the schedule horizon, never shorter
        than the makespan (pre-shared-pool reports carry horizon 0.0)."""
        return max(self.makespan_hours, self.lane_schedule_horizon_hours)

    @property
    def lane_utilization(self) -> float:
        """True pool-wide lane utilization, in ``[0, 1]``.

        Lanes are one shared, persistent pool: every busy interval on a
        lane is disjoint, so summed busy hours over ``lanes x horizon``
        can never exceed 1.0.  (It equals the mean of
        :attr:`lane_utilization_by_lane` exactly — the old >1.0
        "pressure" reading is gone; sustained values near 1.0 with
        growing latencies are now the signal to widen the pool.)
        """
        horizon = self._lane_horizon
        if horizon <= 0 or self.wetlab_lanes <= 0:
            return 0.0
        return self.lane_busy_hours / (horizon * self.wetlab_lanes)

    @property
    def lane_utilization_by_lane(self) -> tuple[float, ...]:
        """Busy-time fraction of each physical lane over the horizon.

        Computed from the shared pool's actual bookings (simulated
        clock).  A lane is one station: its busy intervals never
        overlap, so every entry is a true duty factor in ``[0, 1]`` and
        the tuple's mean equals :attr:`lane_utilization`.
        """
        horizon = self._lane_horizon
        if horizon <= 0:
            return tuple(0.0 for _ in self.lane_busy_hours_by_lane)
        return tuple(busy / horizon for busy in self.lane_busy_hours_by_lane)

    def latency_by_tenant(self) -> dict[str, SummaryStats]:
        """Per-tenant read-latency summaries (tenants in sorted order).

        The raw material of QoS isolation claims: a well-behaved
        tenant's p99 here is what the admission layer protects.
        """
        by_tenant: dict[str, list[float]] = {}
        for item in self.completed:
            if item.request.op == "read":
                by_tenant.setdefault(item.request.tenant, []).append(
                    item.latency_hours
                )
        return {
            tenant: summarize(latencies)
            for tenant, latencies in sorted(by_tenant.items())
        }


class _BatchScratch:
    """Per-batch decode memo for cache-less serving (block_cache protocol).

    Keys are ``(partition, block)``: a block's birth epoch cannot change
    within a run (epochs only move on snapshot/restore), so the scratch
    needs no epoch discrimination — it only spans one batch anyway.
    """

    def __init__(self) -> None:
        self._blocks: dict[tuple[str, int], bytes] = {}

    def get(self, partition: str, block: int, epoch: int = 0) -> bytes | None:
        return self._blocks.get((partition, block))

    def put(self, partition: str, block: int, data: bytes, epoch: int = 0) -> None:
        self._blocks[(partition, block)] = data


class _InvalidationFanout:
    """Store attachment shim used while a run replaces a user's cache.

    Serve-path traffic goes to the run's cache, but invalidations from
    writes applied during the run must also reach the cache the caller
    had attached — otherwise it would keep serving pre-write bytes after
    the run restores it.
    """

    def __init__(self, run_cache, user_cache) -> None:
        self._run = run_cache
        self._user = user_cache

    def get(self, partition: str, block: int, epoch: int = 0):
        return self._run.get(partition, block, epoch)

    def put(self, partition: str, block: int, data: bytes, epoch: int = 0) -> None:
        self._run.put(partition, block, data, epoch)

    def invalidate(self, partition: str, block: int, epoch: int | None = None) -> bool:
        dropped = self._run.invalidate(partition, block, epoch)
        self._user.invalidate(partition, block, epoch)
        return dropped


def policy_latency_comparison(
    baseline: PolicyReport, improved: PolicyReport
) -> LatencyComparison:
    """Mean-latency comparison between two policies (Section 7.4 framing)."""
    return LatencyComparison(
        baseline_hours=baseline.latency.mean,
        precise_hours=improved.latency.mean,
    )


class ServicePipeline:
    """Deterministic event-driven loop over a mixed read/write trace.

    Args:
        store: the object store requests operate on.  Traces with writes
            mutate it; rerun such traces against a freshly built store.
        config: serving tunables (window, latency models, lanes, retries,
            cache budget).
        readout: optional pre-built :class:`repro.wetlab.readout.WetlabReadout`
            used under ``fidelity="wetlab"`` (e.g. with a custom error
            model or PCR protocol); a default is built lazily from the
            config's ``reads_per_block`` and ``wetlab_seed``.  Synthesized
            pools are cached on the engine; committed writes re-synthesize
            exactly the touched partitions.
    """

    def __init__(
        self,
        store: ObjectStore,
        *,
        config: ServiceConfig | None = None,
        readout=None,
    ):
        self.store = store
        self.config = config or ServiceConfig()
        self.scheduler = BatchScheduler(store)
        self.readout = readout

    def _wetlab_readout(self):
        """The wetlab readout engine, built on first use (needs numpy)."""
        if self.readout is None:
            try:
                # The wetlab modules import without numpy (their entry
                # points are gated), so probe numpy itself: sampling
                # needs it from the very first cycle.
                import numpy  # noqa: F401
                from repro.wetlab.readout import WetlabReadout
            except ImportError as exc:  # pragma: no cover - no-numpy envs
                raise ServiceError(
                    "fidelity='wetlab' requires numpy (synthesis and "
                    "sequencing sampling); install numpy or use "
                    "fidelity='reference'"
                ) from exc
            self.readout = WetlabReadout(
                self.store.volume,
                reads_per_block=self.config.reads_per_block,
                seed=self.config.wetlab_seed,
            )
        return self.readout

    # ------------------------------------------------------------------
    # Wetlab charging
    # ------------------------------------------------------------------
    def _cycle_durations(
        self, batch: ScheduledBatch, reads_per_block: int
    ) -> list[float]:
        """Lane occupancy of each of one cycle's readout units.

        Each planned access is one :class:`ReadoutUnit` (its own PCR
        stage plus its own sequencing sample); the unit is the handoff
        currency to the run's shared lane pool, which books these
        durations onto physical lanes in plan-access order.
        """
        if batch.amplified_block_count == 0:
            # Fully cache-covered batches are served at dispatch and never
            # schedule a cycle; reaching here is a scheduling bug.
            raise ServiceError("an empty plan has no wetlab cycle to charge")
        return [
            unit.wetlab_hours(
                pcr_hours=self.config.pcr_hours,
                sequencing_hours=self.config.sequencing_hours,
                reads_per_block=reads_per_block,
            )
            for unit in plan_units(batch.plan)
        ]

    def _order_hours(self, order: SynthesisOrder) -> float:
        """Commit latency of one synthesis order (parallel vendor jobs)."""
        if not order.jobs:
            # Nothing to manufacture (pure deletes): front-end latency.
            return self.config.cache_service_hours
        return max(
            self.config.synthesis_setup_hours
            + self.config.synthesis_hours_per_kilobase * job.nucleotides / 1000.0
            for job in order.jobs
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Iterable[RequestEvent],
        policy: str,
        *,
        fidelity: str = "reference",
        keep_data: bool = False,
    ) -> PolicyReport:
        """Serve a whole arrival trace under one policy.

        Args:
            trace: request events (need not be sorted); events may carry
                write operations (``op="put"/"update"/"delete"``).
            policy: one of :data:`POLICIES`.
            fidelity: one of :data:`FIDELITIES`; ``"wetlab"`` serves every
                cycle from physically decoded reads (PCR → sequencing →
                clustering → RS) and asserts per-request checksums against
                the reference path.
            keep_data: retain per-read payload bytes in the report
                (tests only; defaults off to bound memory at scale).

        Raises:
            ServiceError: if the policy or fidelity is unknown, the trace
                is empty, or a wetlab-decoded payload fails its reference
                checksum.
        """
        if policy not in POLICIES:
            raise ServiceError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        if fidelity not in FIDELITIES:
            raise ServiceError(
                f"unknown fidelity {fidelity!r}; expected one of {FIDELITIES}"
            )
        events = sorted(trace, key=lambda event: event.time_hours)
        if not events:
            raise ServiceError("cannot simulate an empty trace")
        wetlab = self._wetlab_readout() if fidelity == "wetlab" else None
        config = self.config
        injector = config.decode_failure_injector
        # Telemetry is observation only: every hook below records what
        # happened and never touches the heap, RNG state or store, so a
        # traced run's outcomes are byte-identical to an untraced run's.
        tel = (
            RunTelemetry(policy=policy, fidelity=fidelity)
            if tracing_enabled(config.tracing)
            else None
        )

        requests: list[ServiceRequest] = []
        failed: list[FailedRequest] = []

        # Per-object FIFO of outstanding operations, in admission order.
        # An operation leaves its FIFO only at its terminal event (read
        # served/failed; write committed or apply-failed), which yields
        # exact per-object ordering:
        #   * a read proceeds only once every write admitted *before* it
        #     is terminal — it observes exactly those writes, never a
        #     later one;
        #   * a write applies only once everything admitted before it is
        #     terminal or riding the same synthesis order — it can never
        #     overtake an earlier read or write.
        # Entries are mutable [kind, request_id, dispatched] triples.
        object_fifo: dict[str, list[list]] = {}
        held_reads: dict[int, ServiceRequest] = {}

        def fifo_append(request: ServiceRequest) -> None:
            object_fifo.setdefault(request.object_name, []).append(
                ["write" if request.is_write else "read", request.request_id, False]
            )

        def fifo_remove(name: str, request_id: int) -> None:
            entries = object_fifo.get(name)
            if not entries:
                return
            remaining = [entry for entry in entries if entry[1] != request_id]
            if remaining:
                object_fifo[name] = remaining
            else:
                del object_fifo[name]

        def write_ahead(name: str, request_id: int) -> bool:
            """Is a write admitted before this request still outstanding?"""
            for kind, rid, _ in object_fifo.get(name, ()):
                if rid == request_id:
                    return False
                if kind == "write":
                    return True
            return False

        def reject(
            index: int,
            event: RequestEvent,
            reason: str,
            *,
            now: float | None = None,
            attempts: int = 0,
        ) -> None:
            fifo_remove(event.object_name, index)
            if tel is not None:
                tel.failed(index, now if now is not None else event.time_hours, reason)
            failed.append(
                FailedRequest(
                    request_id=index,
                    tenant=event.tenant,
                    object_name=event.object_name,
                    offset=event.offset,
                    length=event.length,
                    arrival_hours=event.time_hours,
                    reason=reason,
                    op=getattr(event, "op", "read"),
                    failure_hours=now if now is not None else event.time_hours,
                    attempts=attempts,
                )
            )

        for index, event in enumerate(events):
            # Structurally malformed events are rejected before a request
            # object exists; range-vs-object validation happens at arrival
            # (it needs the catalog).  Either way the failure is the
            # request's alone.
            try:
                requests.append(
                    ServiceRequest(
                        request_id=index,
                        tenant=event.tenant,
                        object_name=event.object_name,
                        offset=event.offset,
                        length=event.length,
                        arrival_hours=event.time_hours,
                        # Duck-typed events predating the write path may
                        # lack op/payload/as_of; default to a plain read.
                        op=getattr(event, "op", "read"),
                        payload=getattr(event, "payload", None),
                        as_of=getattr(event, "as_of", None),
                        priority=getattr(event, "priority", None),
                        deadline_hours=getattr(event, "deadline_hours", None),
                    )
                )
            except DnaStorageError as exc:
                reject(index, event, str(exc))

        # Time-travel support: when the trace carries as_of reads, the
        # committed-state timeline is sampled as copy-on-write snapshots —
        # one at run start, one per committed synthesis order.  Traces
        # without as_of reads pay nothing, and sampling stops after the
        # trace's largest as_of (resolution only ever looks backwards, so
        # later snapshots would be unreachable — and every live snapshot
        # forces subsequent updates to CoW-redirect, so taking them has a
        # real cost).
        time_travel = any(request.as_of is not None for request in requests)
        max_as_of = max(
            (request.as_of for request in requests if request.as_of is not None),
            default=float("-inf"),
        )
        timeline: list[tuple[float, object]] = []
        if time_travel:
            timeline.append((float("-inf"), self.store.snapshot()))
        #: request_id -> resolved StoreSnapshot for admitted as_of reads.
        asof_views: dict[int, object] = {}

        def resolve_as_of(as_of: float):
            """Latest committed-state snapshot at or before ``as_of``."""
            for taken, snapshot in reversed(timeline):
                if taken <= as_of:
                    return snapshot
            return timeline[0][1]

        cache = (
            DecodedBlockCache(
                config.cache_capacity_bytes, admission=config.cache_admission
            )
            if policy == "batched+cache"
            else None
        )
        # The run's cache rides the store for the duration of the event
        # loop so applied writes (update patches, deletes) invalidate
        # exactly the stale keys; every simulator read passes its cache
        # view explicitly, so the attachment affects invalidation only.
        # A caller-attached cache keeps receiving those invalidations
        # through the fanout shim (it must not serve stale bytes after
        # the run restores it).
        previous_cache = self.store.block_cache
        if cache is not None:
            self.store.attach_cache(
                cache
                if previous_cache is None
                else _InvalidationFanout(cache, previous_cache)
            )
            if tel is not None:
                cache.bind_metrics(tel.metrics)
        queue = RequestQueue()
        sequence_counter = itertools.count()
        heap: list[tuple[float, int, str, object]] = [
            (request.arrival_hours, next(sequence_counter), "arrival", request)
            for request in requests
        ]
        heapq.heapify(heap)
        # Block addressing is computed once per request at admission and
        # shared with the scheduler (halves the extent-walk work).
        blocks_by_id: dict[int, list[tuple[str, int]]] = {}

        completed: list[CompletedRequest] = []
        payloads: dict[int, bytes] = {}
        distinct_requested: dict[tuple[str, int], None] = {}
        totals = {
            "batches": 0,
            "reactions": 0,
            "amplified": 0,
            "accesses": 0,
            "reads": 0,
            "bytes": 0,
            "written_bytes": 0,
            "synthesis_orders": 0,
            "strands": 0,
            "nucleotides": 0,
            "synthesis_hours": 0.0,
            "retry_cycles": 0,
            "retried_requests": 0,
            "decode_failures": 0,
            "lane_busy_hours": 0.0,
            "qos_throttled": 0,
            "qos_deferred": 0,
            "deadline_violations": 0,
        }
        # One persistent pool of physical lanes for the whole run: every
        # cycle (retries included) books its units onto these frontiers.
        lane_pool = SharedLanePool(config.wetlab_lanes)
        # QoS gates the *batch* admission window; the unbatched policy
        # dispatches at arrival and has no window to gate.
        qos_admission = (
            QoSAdmission(config.qos)
            if config.qos is not None and policy != "unbatched"
            else None
        )
        dispatch_scheduled = False
        next_batch_id = 0

        def push_event(when: float, kind: str, payload_) -> None:
            heapq.heappush(heap, (when, next(sequence_counter), kind, payload_))

        def ensure_dispatch(now: float) -> None:
            nonlocal dispatch_scheduled
            if not dispatch_scheduled:
                push_event(now + config.window_hours, "dispatch", None)
                dispatch_scheduled = True

        def serve(
            request: ServiceRequest,
            completion_hours: float,
            *,
            from_cache: bool,
            batch_id: int | None,
            block_cache=None,
            attempts: int = 1,
        ) -> None:
            view_at = asof_views.get(request.request_id)
            data = self.store.get(
                request.object_name,
                offset=request.offset,
                length=request.length,
                block_cache=block_cache if block_cache is not None else cache,
                at=view_at,
            )
            if wetlab is not None:
                # Wetlab fidelity: the served bytes came from physically
                # decoded reads; hold them against the digital reference.
                reference = self.store.get(
                    request.object_name,
                    offset=request.offset,
                    length=request.length,
                    block_cache=None,
                    at=view_at,
                )
                if zlib.crc32(data) != zlib.crc32(reference):
                    raise ServiceError(
                        f"wetlab fidelity violation: request "
                        f"{request.request_id} ({request.object_name!r} "
                        f"[{request.offset}, +{len(reference)})) decoded "
                        "bytes differ from the reference path"
                    )
            totals["bytes"] += len(data)
            if keep_data:
                payloads[request.request_id] = data
            completed.append(
                CompletedRequest(
                    request=request,
                    completion_hours=completion_hours,
                    byte_count=len(data),
                    checksum=zlib.crc32(data),
                    served_from_cache=from_cache,
                    batch_id=batch_id,
                    attempts=attempts,
                )
            )
            fifo_remove(request.object_name, request.request_id)
            if config.qos is not None and request.op == "read":
                # Deadline accounting (reads only): the request's own
                # budget wins over its tenant profile's; violations are
                # counted, never dropped.
                budget = request.deadline_hours
                if budget is None:
                    budget = config.qos.profile(request.tenant).deadline_hours
                if (
                    budget is not None
                    and completion_hours - request.arrival_hours > budget + 1e-9
                ):
                    totals["deadline_violations"] += 1
                    if tel is not None:
                        tel.deadline_violation(request, completion_hours)
            if tel is not None:
                tel.served(
                    request, completion_hours, from_cache=from_cache, attempts=attempts
                )

        def release_ready(name: str, now: float) -> None:
            """Re-admit held reads no longer behind an outstanding write.

            Only the FIFO prefix up to the first still-outstanding write
            is releasable — reads behind a later write keep waiting for
            exactly that write.
            """
            for kind, rid, _ in list(object_fifo.get(name, ())):
                if kind == "write":
                    break
                request = held_reads.pop(rid, None)
                if request is not None:
                    if tel is not None:
                        tel.released(request, now)
                    admit_read(request, now, released=True)

        def charge(batch: ScheduledBatch, reads_per_block: int) -> None:
            # A dispatch fully covered by the cache is not a wetlab cycle.
            if batch.amplified_block_count > 0:
                totals["batches"] += 1
            totals["reactions"] += batch.reaction_count
            totals["amplified"] += batch.amplified_block_count
            totals["reads"] += batch.amplified_block_count * reads_per_block
            for key in batch.requested_blocks:
                distinct_requested.setdefault(key, None)
            if tel is not None:
                tel.charged(batch, reads_per_block)

        def start_cycle(
            batch: ScheduledBatch,
            riders: tuple[ServiceRequest, ...],
            view,
            now: float,
            attempt: int,
            reads_per_block: int,
        ) -> None:
            """Put a cycle's units on the shared lane pool and book its
            completion (the last of its units' absolute end times)."""
            durations = self._cycle_durations(batch, reads_per_block)
            schedule = lane_pool.schedule(now, durations)
            completion = max(end for _, _, end in schedule)
            totals["lane_busy_hours"] += sum(durations)
            if tel is not None:
                tel.cycle(
                    batch,
                    riders,
                    schedule,
                    now,
                    completion,
                    attempt,
                    reads_per_block,
                )
            push_event(
                completion,
                "complete",
                (batch, riders, view, attempt, reads_per_block),
            )

        def dispatch_batch(batch: ScheduledBatch, now: float) -> None:
            """Serve a scheduled batch: cache-covered requests leave at
            dispatch, the rest ride the wetlab cycle to completion."""
            charge(batch, config.reads_per_block)
            if cache is not None:
                view = PinnedCacheView(cache, batch.pinned_payloads)
            else:
                # Cache-less policies still memoize decodes within the
                # batch (wall-clock only; no reported number depends on
                # it — work counters come from the plan).
                view = _BatchScratch()
            pinned_keys = frozenset(key for key, _ in batch.pinned_payloads)
            riders: list[ServiceRequest] = []
            for request in batch.requests:
                if tel is not None:
                    tel.dispatched(request, now)
                # A request whose every block was pinned from the cache
                # needs no wetlab of its own: it is answered at dispatch,
                # at memory speed, not at the cycle's completion.
                if cache is not None and all(
                    key in pinned_keys
                    for key in blocks_by_id[request.request_id]
                ):
                    if tel is not None:
                        tel.front_end(
                            request,
                            now,
                            now + config.cache_service_hours,
                            "cache_service",
                        )
                    serve(
                        request,
                        now + config.cache_service_hours,
                        from_cache=True,
                        batch_id=None,
                        block_cache=view,
                    )
                else:
                    # The rider's FIFO entry stays until it is served, so
                    # no write to its object can apply under the cycle.
                    riders.append(request)
            if riders:
                start_cycle(
                    batch, tuple(riders), view, now, 1, config.reads_per_block
                )

        def cycle_failures(
            batch: ScheduledBatch,
            attempt: int,
            reads_per_block: int,
            view,
        ) -> dict[tuple[str, int], str]:
            """Run a cycle physically (wetlab) and collect decode failures.

            Successfully decoded blocks are published into the batch's
            view (write-through makes them cache-visible, now that the
            cycle is complete); failed and injected-failure blocks are
            withheld so affected riders can retry.
            """
            failures: dict[tuple[str, int], str] = {}
            planned: dict[str, list[int]] = {}
            for access in batch.plan.accesses:
                planned.setdefault(access.partition, []).extend(
                    range(access.start_block, access.end_block + 1)
                )
            if injector is not None:
                for partition_name, blocks in planned.items():
                    for block in blocks:
                        key = (partition_name, block)
                        if injector(batch.batch_id, attempt, key):
                            failures[key] = "injected decode failure"
            decoded: dict[tuple[str, int], bytes] = {}
            if wetlab is not None:
                # Physically run the cycle: every unit amplifies its
                # partition's pool and samples its own reads (fresh PCR
                # and deeper coverage on retries), then decode exactly
                # the planned block set.
                with maybe_wall_span(
                    "wetlab_readout",
                    batch_id=batch.batch_id,
                    attempt=attempt,
                ):
                    reads = wetlab.unit_reads_by_partition(
                        batch.plan,
                        batch_seed=batch.batch_id,
                        reads_per_block=reads_per_block,
                    )
                decoded, decode_failures = self.store.try_decode_blocks(
                    planned,
                    reads,
                    workers=config.decode_workers,
                    shared_memory=config.decode_shared_memory,
                    cluster_shards=config.decode_cluster_shards,
                )
                for key, reason in decode_failures.items():
                    failures.setdefault(key, reason)
                for key, data in decoded.items():
                    # Block-level checksum gate: a misassembled readout
                    # (e.g. a misprimed neighbour strand winning a
                    # shallow cluster) can decode "successfully" with
                    # wrong bytes.  Catch it here so the retry budget
                    # covers it — deeper coverage on the next cycle —
                    # instead of a fidelity assertion aborting the run
                    # at serve time.
                    if key in failures:
                        continue
                    reference = self.store.volume.partition(
                        key[0]
                    ).read_block_reference(key[1])
                    if data != reference:
                        failures[key] = (
                            f"decoded bytes of block {key[1]} in partition "
                            f"{key[0]!r} failed the reference checksum "
                            "(misassembled readout)"
                        )
            with maybe_wall_span("cache_fill", blocks=len(decoded)):
                for key, data in decoded.items():
                    if key not in failures:
                        # Mirror the reference path's fill sequence (lookup
                        # miss, then insert): the miss records the block's
                        # demand with the cache — its stats and the TinyLFU
                        # admission sketch — before the pin makes later
                        # serve-path lookups bypass the cache entirely.
                        epoch = self.store.volume.block_epoch(key[0], key[1])
                        view.get(key[0], key[1], epoch)
                        view.put(key[0], key[1], data, epoch)
            return failures

        def complete(
            batch: ScheduledBatch,
            riders: tuple[ServiceRequest, ...],
            view,
            attempt: int,
            reads_per_block: int,
            completion: float,
        ) -> None:
            # Serving (and therefore cache fill) happens at cycle
            # completion: blocks decoded by an in-flight cycle must not be
            # cache-visible before the cycle's sequencing finishes.  The
            # batch's schedule-time cache hits were pinned, so evictions
            # during the cycle cannot turn charged work into free reads.
            failures: dict[tuple[str, int], str] = {}
            if batch.amplified_block_count > 0 and (
                wetlab is not None or injector is not None
            ):
                failures = cycle_failures(batch, attempt, reads_per_block, view)
                totals["decode_failures"] += len(failures)
                if tel is not None:
                    tel.decode_failures(len(failures))
            retriers: list[ServiceRequest] = []
            for request in riders:
                if failures and any(
                    key in failures for key in blocks_by_id[request.request_id]
                ):
                    retriers.append(request)
                    continue
                serve(
                    request,
                    completion,
                    from_cache=False,
                    batch_id=batch.batch_id,
                    block_cache=view,
                    attempts=attempt,
                )
            if retriers:
                if attempt > config.retry_budget:
                    for request in retriers:
                        needed = sorted(
                            key
                            for key in blocks_by_id[request.request_id]
                            if key in failures
                        )
                        reject(
                            request.request_id,
                            events[request.request_id],
                            "decode failed after "
                            f"{attempt} cycles (retry budget "
                            f"{config.retry_budget}): blocks {needed} — "
                            f"{failures[needed[0]]}",
                            now=completion,
                            attempts=attempt,
                        )
                else:
                    # Retry cycle: only the failed blocks the retrying
                    # requests still need, re-amplified with fresh PCR and
                    # sequenced at deeper coverage under a fresh seed.
                    nonlocal next_batch_id
                    needed: dict[tuple[str, int], None] = {}
                    for request in retriers:
                        for key in blocks_by_id[request.request_id]:
                            if key in failures:
                                needed.setdefault(key, None)
                    retry_plan = plan_partition_ranges(
                        self.store.volume,
                        ranges_from_block_keys(list(needed)),
                        label=f"retry-{batch.batch_id:05d}-{attempt}",
                    )
                    retry_batch = ScheduledBatch(
                        batch_id=next_batch_id,
                        requests=tuple(retriers),
                        plan=retry_plan,
                        requested_blocks=(),
                    )
                    next_batch_id += 1
                    next_reads = config.retry_reads_per_block(attempt + 1)
                    charge(retry_batch, next_reads)
                    totals["retry_cycles"] += 1
                    totals["retried_requests"] += len(retriers)
                    if tel is not None:
                        tel.retried(len(retriers))
                    start_cycle(
                        retry_batch,
                        tuple(retriers),
                        view,
                        completion,
                        attempt + 1,
                        next_reads,
                    )
            # Served/failed riders may have been the last in-flight reads
            # blocking a queued write.
            if policy == "unbatched":
                pump_writes(completion)
            elif len(queue):
                ensure_dispatch(completion)

        def pump_writes(now: float) -> None:
            """Dispatch every queued write whose object barrier is clear.

            A write is eligible only when everything admitted before it on
            its object has reached a terminal state or is another
            not-yet-dispatched write riding this same pump — so writes
            serialize per object, never overtake a read, and same-window
            writes still coalesce into one synthesis order whose
            per-partition jobs run in parallel at the vendor.
            """

            def eligible(request: ServiceRequest) -> bool:
                if not request.is_write:
                    return False
                for kind, rid, dispatched in object_fifo.get(
                    request.object_name, ()
                ):
                    if rid == request.request_id:
                        return True
                    if kind == "read" or dispatched:
                        # An outstanding read, or a write already riding
                        # an uncommitted order, must not be overtaken
                        # (queue order guarantees earlier queued writes
                        # of this object were ruled eligible first).
                        return False
                return False

            writes = queue.take(eligible)
            if not writes:
                return
            if tel is not None:
                for request in writes:
                    tel.dispatched(request, now)
            nonlocal next_batch_id
            order = self.scheduler.schedule_writes(
                writes, order_id=next_batch_id
            )
            next_batch_id += 1
            applied = order.applied
            rejected = False
            for outcome in order.outcomes:
                name = outcome.request.object_name
                if outcome.applied:
                    for entry in object_fifo.get(name, ()):
                        if entry[1] == outcome.request.request_id:
                            entry[2] = True  # dispatched, awaiting commit
                            break
                else:
                    # The store rejected it (duplicate name, exhausted
                    # update slots, bad range): this write fails alone,
                    # at dispatch time (reject drops its FIFO entry).
                    rejected = True
                    reject(
                        outcome.request.request_id,
                        events[outcome.request.request_id],
                        outcome.reason,
                        now=now,
                    )
                    release_ready(name, now)
            if applied:
                totals["synthesis_orders"] += 1
                totals["strands"] += order.strand_count
                totals["nucleotides"] += order.nucleotide_count
                hours = self._order_hours(order)
                totals["synthesis_hours"] += hours
                if tel is not None:
                    tel.synthesis_dispatched(order, now)
                push_event(now + hours, "synthesis", order)
            if rejected and len(queue):
                # A rejection's release_ready may have served held reads
                # instantly (cache hit, zero-length, admission reject),
                # unblocking writes queued behind them with no future
                # event left to pump — re-arm so they are never stranded.
                if policy == "unbatched":
                    pump_writes(now)
                else:
                    ensure_dispatch(now)

        def commit_order(order: SynthesisOrder, now: float) -> None:
            """A synthesis order delivered: acknowledge its writes."""
            if tel is not None:
                tel.synthesis_committed(order, now)
            if wetlab is not None:
                # The manufactured strands join their partitions' pools;
                # only the touched pools re-synthesize.
                for partition_name in order.partitions:
                    wetlab.reset_pool(partition_name)
            released: dict[str, None] = {}
            for outcome in order.applied:
                request = outcome.request
                name = request.object_name
                fifo_remove(name, request.request_id)
                released[name] = None
                totals["written_bytes"] += outcome.bytes_written
                payload_bytes = request.payload or b""
                completed.append(
                    CompletedRequest(
                        request=request,
                        completion_hours=now,
                        byte_count=outcome.bytes_written,
                        checksum=zlib.crc32(payload_bytes),
                        served_from_cache=False,
                        batch_id=order.order_id,
                    )
                )
                if tel is not None:
                    tel.served(request, now, from_cache=False, attempts=1)
            if time_travel and now <= max_as_of:
                # Sample the committed-state timeline: later as_of reads
                # at or past `now` observe this order's writes.  Commits
                # after the largest as_of in the trace need no snapshot —
                # nothing can resolve to them.
                timeline.append((now, self.store.snapshot()))
            for name in released:
                release_ready(name, now)
            if policy == "unbatched":
                pump_writes(now)
            elif len(queue):
                ensure_dispatch(now)

        def admit_read(
            request: ServiceRequest, now: float, *, released: bool = False
        ) -> None:
            name = request.object_name
            view_at = None
            if request.as_of is not None:
                # Time-travel read: resolve the committed-state snapshot
                # once, at admission.  Historical state is immutable, so
                # the read joins neither side of the per-object write
                # barrier: it never waits for a pending write (the
                # snapshot keeps the old blocks) and never delays one.
                view_at = resolve_as_of(request.as_of)
                asof_views[request.request_id] = view_at
            elif not released:
                fifo_append(request)
            if view_at is None and write_ahead(name, request.request_id):
                # Read-after-write ordering: the read waits for exactly
                # the writes admitted before it to commit, then observes
                # their bytes (never a later write's).
                held_reads[request.request_id] = request
                if tel is not None:
                    tel.held(request, now)
                return
            try:
                blocks = self.scheduler.request_blocks(request, at=view_at)
            except DnaStorageError as exc:
                # Unknown object or range past the object's end: this
                # request fails alone; everyone else keeps being served.
                # (request_id indexes the time-sorted events list; `now`
                # is the decision time — later than arrival for reads
                # validated only after a write barrier released them.)
                reject(
                    request.request_id,
                    events[request.request_id],
                    str(exc),
                    now=now,
                )
                return
            blocks_by_id[request.request_id] = blocks
            totals["accesses"] += len(blocks)
            if not blocks:
                # Zero-length read: a valid empty response needing no
                # wetlab work — answered at front-end speed.
                if tel is not None:
                    tel.front_end(
                        request, now, now + config.cache_service_hours, "front_end"
                    )
                serve(
                    request,
                    now + config.cache_service_hours,
                    from_cache=False,
                    batch_id=None,
                )
                return
            if policy == "unbatched":
                nonlocal next_batch_id
                batch = self.scheduler.schedule(
                    [request],
                    batch_id=next_batch_id,
                    blocks_by_request=blocks_by_id,
                )
                next_batch_id += 1
                dispatch_batch(batch, now)
                return
            if cache is not None and all(
                cache.contains(
                    partition, block, self.store.volume.block_epoch(partition, block)
                )
                for partition, block in blocks
            ):
                # Fast path: every block is hot; no wetlab, no window.
                for key in blocks:
                    distinct_requested.setdefault(key, None)
                if tel is not None:
                    tel.front_end(
                        request, now, now + config.cache_service_hours, "cache_service"
                    )
                serve(
                    request,
                    now + config.cache_service_hours,
                    from_cache=True,
                    batch_id=None,
                )
                return
            queue.push(request)
            if tel is not None:
                tel.queued(request, now)
            ensure_dispatch(now)

        def admit_write(request: ServiceRequest, now: float) -> None:
            fifo_append(request)
            queue.push(request)
            if tel is not None:
                tel.queued(request, now)
            if policy == "unbatched":
                pump_writes(now)
            else:
                ensure_dispatch(now)

        # A traced run activates its tracer (ambient — the decode engine
        # and stage regions find it there) and opens a stage collector
        # for the loop's extent; untraced runs skip both entirely.
        run_stages: dict[str, float] = {}
        scope = ExitStack()
        if tel is not None:
            scope.enter_context(activate(tel.tracer))
            run_stages = scope.enter_context(collect_stages())
        try:
            while heap:
                now, _, kind, payload = heapq.heappop(heap)
                if kind == "arrival":
                    request = payload
                    if tel is not None:
                        tel.admitted(request, now)
                    if request.is_write:
                        admit_write(request, now)
                    else:
                        admit_read(request, now)
                elif kind == "dispatch":
                    dispatch_scheduled = False
                    # Reads drain before writes apply: a queued read arrived
                    # before every queued write on its object (later reads
                    # were held at admission), so scheduling it first puts it
                    # in flight and the write barrier below keeps the store
                    # unmutated until its cycle delivers — same-window
                    # operations serve in arrival order.
                    queue_depth = len(queue)
                    if qos_admission is None:
                        pending = queue.drain_op("read")
                    else:
                        # QoS admission: only rate-eligible requests within
                        # their tenant's fair share enter this window's
                        # batch; the rest stay queued (in arrival order)
                        # for the next window.
                        waiting = queue.peek_op("read")
                        decision = qos_admission.admit(
                            waiting,
                            now,
                            lambda r: len(blocks_by_id[r.request_id]),
                        )
                        totals["qos_throttled"] += len(decision.throttled)
                        totals["qos_deferred"] += len(decision.deferred)
                        if tel is not None:
                            tel.qos_decision(decision, now)
                        admitted_ids = {
                            r.request_id for r in decision.admitted
                        }
                        pending = queue.take(
                            lambda r: r.request_id in admitted_ids
                        )
                    if pending:
                        batch = self.scheduler.schedule(
                            pending,
                            cache=cache,
                            batch_id=next_batch_id,
                            blocks_by_request=blocks_by_id,
                        )
                        next_batch_id += 1
                        if tel is not None:
                            tel.batch_scheduled(batch, queue_depth, now)
                        dispatch_batch(batch, now)
                    pump_writes(now)
                    # Deferred reads need a future window: re-arm the
                    # dispatch timer so their buckets refill / shares free
                    # up (window_hours > 0 is enforced by ServiceConfig,
                    # and the admission's progress guarantee admits at
                    # least one eligible request per window, so this
                    # terminates).
                    if qos_admission is not None and queue.peek_op("read"):
                        ensure_dispatch(now)
                elif kind == "synthesis":
                    commit_order(payload, now)
                else:  # complete: deliver the riders and publish their blocks
                    batch, riders, view, attempt, reads_per_block = payload
                    complete(
                        batch, riders, view, attempt, reads_per_block, completion=now
                    )

            # Close the tracing/stage scope before reporting; the run's
            # collector shadowed any caller-opened one for the loop's
            # extent, so fold the stage totals back out to it.
            scope.close()
            if tel is not None:
                record_stages(run_stages)

            checksum = 0
            for item in sorted(completed, key=lambda c: c.request.request_id):
                checksum = zlib.crc32(item.checksum.to_bytes(4, "big"), checksum)
            # The report lists deliveries in completion order (ties broken by
            # admission id); serves were recorded in event order, which may
            # run ahead for requests whose completion lies in the future.
            completed.sort(key=lambda c: (c.completion_hours, c.request.request_id))
            failed.sort(key=lambda f: f.request_id)
            read_latencies = [
                item.latency_hours for item in completed if item.request.op == "read"
            ]
            write_latencies = [
                item.latency_hours for item in completed if item.request.op != "read"
            ]
            empty = SummaryStats(
                count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0,
                minimum=0.0, maximum=0.0,
            )
            if completed:
                makespan = max(item.completion_hours for item in completed)
            else:  # every request was rejected
                makespan = 0.0
            observability = (
                tel.finalize(
                    makespan_hours=makespan,
                    wetlab_lanes=config.wetlab_lanes,
                    lane_busy_hours_by_lane=list(lane_pool.busy_hours_by_lane),
                    lane_schedule_horizon_hours=lane_pool.horizon_hours,
                    stage_seconds=run_stages,
                )
                if tel is not None
                else None
            )
            return PolicyReport(
                policy=policy,
                fidelity=fidelity,
                completed=tuple(completed),
                failed=tuple(failed),
                latency=summarize(read_latencies) if read_latencies else empty,
                write_latency=summarize(write_latencies) if write_latencies else None,
                makespan_hours=makespan,
                throughput_per_hour=len(completed) / makespan if makespan else 0.0,
                batches=totals["batches"],
                pcr_reactions=totals["reactions"],
                amplified_blocks=totals["amplified"],
                requested_block_accesses=totals["accesses"],
                distinct_requested_blocks=len(distinct_requested),
                sequenced_reads=totals["reads"],
                decoded_bytes=totals["bytes"],
                written_bytes=totals["written_bytes"],
                synthesis_orders=totals["synthesis_orders"],
                synthesized_strands=totals["strands"],
                synthesized_nucleotides=totals["nucleotides"],
                synthesis_hours=totals["synthesis_hours"],
                retry_cycles=totals["retry_cycles"],
                retried_requests=totals["retried_requests"],
                decode_failures=totals["decode_failures"],
                wetlab_lanes=config.wetlab_lanes,
                lane_busy_hours=totals["lane_busy_hours"],
                lane_busy_hours_by_lane=lane_pool.busy_hours_by_lane,
                lane_schedule_horizon_hours=lane_pool.horizon_hours,
                qos_enabled=qos_admission is not None,
                qos_throttled=totals["qos_throttled"],
                qos_deferred=totals["qos_deferred"],
                deadline_violations=totals["deadline_violations"],
                checksum=checksum,
                cache=cache.stats if cache is not None else None,
                payloads=payloads if keep_data else None,
                observability=observability,
            )
        finally:
            # Idempotent: already closed on the clean path; on an
            # exception this deactivates the tracer and stage collector.
            scope.close()
            # Detach the run's cache (exceptions included) so the
            # store's prior attachment is preserved across runs, and
            # release the run's time-travel snapshots so blocks they
            # pinned (e.g. pre-update versions, deleted objects) become
            # reclaimable again.
            self.store.block_cache = previous_cache
            for _, snapshot in timeline:
                if not snapshot.released:
                    snapshot.release()

    def _restore_seed(self, seed) -> None:
        """Rewind the store to the seed snapshot and refresh stale pools."""
        changed = self.store.restore(seed)
        if self.readout is not None:
            for name in changed:
                self.readout.reset_pool(name)

    def compare(
        self,
        trace: Iterable[RequestEvent],
        *,
        policies: tuple[str, ...] = POLICIES,
        fidelity: str = "reference",
        fidelities: tuple[str, ...] | None = None,
    ) -> dict[str, PolicyReport]:
        """Serve the same trace under several policies from one seed store.

        The store is snapshotted once (copy-on-write — no data is copied)
        and restored before every run, so each policy × fidelity
        combination executes against a writable clone of the identical
        seed state: same catalog, same allocation frontier and cursor,
        same partitions, primers and seeds.  Mixed read/write traces are
        therefore fully supported — every run reproduces byte-identical
        per-request outcomes to serving it against a freshly rebuilt
        store, at a fraction of the setup cost (no primer-library
        regeneration, no re-striping, no re-synthesis of untouched
        pools).  Read-only traces reproduce the rebuild path's whole
        report bit for bit; with updates in the trace, the seed snapshot
        makes them copy-on-write redirects instead of in-place patch
        slots, so the physical layout (PCR access counts, cycle
        latencies) may differ from an unsnapshotted store's while the
        bytes, failures and synthesis volume stay identical.  The store
        is left restored to the seed state and the snapshot is released
        when the comparison finishes.

        Args:
            trace: request events; writes are allowed (they mutate only
                the run's clone, never the seed state).
            policies: serving policies to run (default: all three).
            fidelity: fidelity used when ``fidelities`` is omitted.
            fidelities: optional tuple of fidelities to cross with the
                policies.  With a single fidelity the result is keyed by
                policy name (backwards compatible); with several, by
                ``"policy@fidelity"``.
        """
        events = list(trace)
        if fidelities is None:
            fidelities = (fidelity,)
        if not fidelities:
            raise ServiceError("fidelities must name at least one fidelity")
        seed = self.store.snapshot()
        try:
            reports: dict[str, PolicyReport] = {}
            for fid in fidelities:
                for policy in policies:
                    self._restore_seed(seed)
                    key = policy if len(fidelities) == 1 else f"{policy}@{fid}"
                    reports[key] = self.run(events, policy, fidelity=fid)
            return reports
        finally:
            self._restore_seed(seed)
            seed.release()


#: Backwards-compatible name of the original read-only simulator.
ServiceSimulator = ServicePipeline
