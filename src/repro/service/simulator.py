"""Discrete-event simulator of the multi-tenant serving layer.

Drives a request arrival trace (:mod:`repro.workloads.service_traces`)
against an :class:`ObjectStore` under three serving policies and charges
every wetlab cycle the latency the paper's sequencing models predict
(Section 7.4, via :class:`IlluminaRunModel` / :class:`NanoporeRunModel`):

* ``unbatched`` — every request runs its own PCR + sequencing cycle, the
  one-synchronous-caller behaviour of ``ObjectStore.get``;
* ``batched`` — requests arriving within a scheduling window share one
  merged, cross-tenant-deduplicated cycle (:class:`BatchScheduler`);
* ``batched+cache`` — additionally, decoded blocks land in a
  :class:`DecodedBlockCache`, so hot blocks skip the wetlab entirely and
  fully-cached requests complete at memory speed.

The event loop is fully deterministic: simulated time only, ties broken
by admission order, no wall-clock or unseeded randomness anywhere.  Every
policy decodes byte-identical payloads (checksummed per request), so the
policies differ only in wetlab work and latency — which is exactly the
comparison reported: throughput, p50/p95/p99 latency
(:func:`repro.analysis.stats.summarize`), PCR reactions, sequenced reads,
cache hit rate and amplification waste.

Two *fidelities* of the read path are supported (orthogonal to policy):

* ``fidelity="reference"`` — payload bytes come from the digital
  reference (originals plus patch chains); wetlab work is only *charged*.
* ``fidelity="wetlab"`` — every scheduled cycle physically runs its
  merged plan through simulated PCR amplification and sequencing-read
  sampling (:class:`repro.wetlab.readout.WetlabReadout`), decodes exactly
  the planned block set through clustering, trace reconstruction and
  Reed-Solomon (:meth:`ObjectStore.decode_blocks`), serves responses from
  those wetlab-decoded payloads and asserts each request's checksum
  against the reference path.  Requires numpy.

Malformed requests — negative ranges, unknown objects, ranges past the
object's end — fail *individually* at admission (recorded as
:class:`FailedRequest` outcomes); they never abort other tenants'
requests.  Zero-length reads are valid empty reads served at front-end
speed with no wetlab work.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.latency_model import LatencyComparison
from repro.analysis.stats import SummaryStats, summarize
from repro.exceptions import DnaStorageError, ServiceError
from repro.service.cache import CacheStats, DecodedBlockCache, PinnedCacheView
from repro.service.queue import BatchScheduler, RequestQueue, ScheduledBatch
from repro.service.requests import CompletedRequest, FailedRequest, ReadRequest
from repro.store.object_store import ObjectStore
from repro.wetlab.sequencing import IlluminaRunModel, NanoporeRunModel
from repro.workloads.service_traces import RequestEvent

POLICIES = ("unbatched", "batched", "batched+cache")
FIDELITIES = ("reference", "wetlab")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the serving layer.

    Attributes:
        window_hours: scheduling window; requests arriving within it share
            one wetlab cycle (ignored by the unbatched policy).
        pcr_hours: wall-clock hours of one PCR stage (the cycle's
            reactions run in parallel on the thermocycler).
        reads_per_block: sequencing reads budgeted per amplified block —
            coverage for the block and its update slots (the paper decodes
            a block from ~30 precise-access reads, Section 7.3).
        sequencer: ``"nanopore"`` (streaming, latency scales with reads)
            or ``"illumina"`` (fixed-run, latency quantized in runs).
        cache_capacity_bytes: byte budget of the decoded-block cache.
        cache_service_hours: latency of a fully cache-served response.
        illumina / nanopore: the run models used to charge latency.
        wetlab_seed: base RNG seed of the default wetlab readout engine
            (synthesis skew, sequencing sampling) under
            ``fidelity="wetlab"``.
    """

    window_hours: float = 0.5
    pcr_hours: float = 2.0
    reads_per_block: int = 30
    sequencer: str = "nanopore"
    cache_capacity_bytes: int = 1 << 20
    cache_service_hours: float = 0.005
    illumina: IlluminaRunModel = field(default_factory=IlluminaRunModel)
    nanopore: NanoporeRunModel = field(default_factory=NanoporeRunModel)
    wetlab_seed: int = 0

    def __post_init__(self) -> None:
        if self.window_hours < 0:
            raise ServiceError("window_hours must be non-negative")
        if self.pcr_hours < 0 or self.cache_service_hours < 0:
            raise ServiceError("stage latencies must be non-negative")
        if self.reads_per_block <= 0:
            raise ServiceError("reads_per_block must be positive")
        if self.sequencer not in ("nanopore", "illumina"):
            raise ServiceError(f"unknown sequencer {self.sequencer!r}")
        if self.cache_capacity_bytes <= 0:
            raise ServiceError("cache_capacity_bytes must be positive")

    def sequencing_hours(self, reads: int) -> float:
        """Latency of producing ``reads`` reads on the configured model."""
        model = self.nanopore if self.sequencer == "nanopore" else self.illumina
        return model.latency_hours(reads)


@dataclass
class PolicyReport:
    """Aggregate outcome of serving one trace under one policy.

    Attributes:
        policy: the serving policy name.
        fidelity: read-path fidelity the trace was served under
            (``"reference"`` or ``"wetlab"``).
        completed: every served request, in completion order.
        failed: requests rejected at admission (malformed range, unknown
            object), in admission order; they are excluded from latency,
            throughput and checksum accounting.
        latency: p50/p95/p99-style summary of per-request latency hours.
        makespan_hours: time of the last delivery.
        throughput_per_hour: requests delivered per simulated hour.
        batches: wetlab cycles run (one per request when unbatched).
        pcr_reactions: total PCR reactions across all cycles.
        amplified_blocks: total blocks amplified across all cycles.
        requested_block_accesses: per-request block needs, duplicates
            included — the work a per-request policy would amplify.
        distinct_requested_blocks: distinct blocks the whole trace
            touched — the floor any policy could amplify.
        sequenced_reads: total sequencing reads charged.
        decoded_bytes: total payload bytes delivered.
        checksum: order-independent digest over per-request payload CRCs;
            equal checksums across policies mean identical decoded bytes.
        cache: cache counters (``batched+cache`` only).
        payloads: per-request payload bytes (only when ``keep_data``).
    """

    policy: str
    completed: tuple[CompletedRequest, ...]
    latency: SummaryStats
    makespan_hours: float
    throughput_per_hour: float
    batches: int
    pcr_reactions: int
    amplified_blocks: int
    requested_block_accesses: int
    distinct_requested_blocks: int
    sequenced_reads: int
    decoded_bytes: int
    checksum: int
    fidelity: str = "reference"
    failed: tuple[FailedRequest, ...] = ()
    cache: CacheStats | None = None
    payloads: dict[int, bytes] | None = None

    @property
    def amplification_factor(self) -> float:
        """Amplified blocks per distinct requested block.

        1.0 means every block was amplified exactly once (perfect
        amortization); the unbatched policy pays this factor again for
        every duplicated request, a cache can push it below 1.0.
        """
        if self.distinct_requested_blocks == 0:
            return 0.0
        return self.amplified_blocks / self.distinct_requested_blocks


class _BatchScratch:
    """Per-batch decode memo for cache-less serving (block_cache protocol)."""

    def __init__(self) -> None:
        self._blocks: dict[tuple[str, int], bytes] = {}

    def get(self, partition: str, block: int) -> bytes | None:
        return self._blocks.get((partition, block))

    def put(self, partition: str, block: int, data: bytes) -> None:
        self._blocks[(partition, block)] = data


def policy_latency_comparison(
    baseline: PolicyReport, improved: PolicyReport
) -> LatencyComparison:
    """Mean-latency comparison between two policies (Section 7.4 framing)."""
    return LatencyComparison(
        baseline_hours=baseline.latency.mean,
        precise_hours=improved.latency.mean,
    )


class ServiceSimulator:
    """Deterministic discrete-event loop over a request arrival trace.

    Args:
        store: the object store requests read from.
        config: serving tunables (window, latency models, cache budget).
        readout: optional pre-built :class:`repro.wetlab.readout.WetlabReadout`
            used under ``fidelity="wetlab"`` (e.g. with a custom error
            model or PCR protocol); a default is built lazily from the
            config's ``reads_per_block`` and ``wetlab_seed``.  Synthesized
            pools are cached on the engine, so repeated runs against an
            unchanged store reuse them.
    """

    def __init__(
        self,
        store: ObjectStore,
        *,
        config: ServiceConfig | None = None,
        readout=None,
    ):
        self.store = store
        self.config = config or ServiceConfig()
        self.scheduler = BatchScheduler(store)
        self.readout = readout

    def _wetlab_readout(self):
        """The wetlab readout engine, built on first use (needs numpy)."""
        if self.readout is None:
            try:
                from repro.wetlab.readout import WetlabReadout
            except ImportError as exc:  # pragma: no cover - no-numpy envs
                raise ServiceError(
                    "fidelity='wetlab' requires numpy (synthesis and "
                    "sequencing sampling); install numpy or use "
                    "fidelity='reference'"
                ) from exc
            self.readout = WetlabReadout(
                self.store.volume,
                reads_per_block=self.config.reads_per_block,
                seed=self.config.wetlab_seed,
            )
        return self.readout

    # ------------------------------------------------------------------
    # Wetlab charging
    # ------------------------------------------------------------------
    def _cycle_hours(self, batch: ScheduledBatch) -> float:
        """Latency of one wetlab cycle (PCR stage + sequencing)."""
        if batch.amplified_block_count == 0:
            # Fully cache-covered batches are served at dispatch and never
            # schedule a cycle; reaching here is a scheduling bug.
            raise ServiceError("an empty plan has no wetlab cycle to charge")
        reads = batch.amplified_block_count * self.config.reads_per_block
        return self.config.pcr_hours + self.config.sequencing_hours(reads)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Iterable[RequestEvent],
        policy: str,
        *,
        fidelity: str = "reference",
        keep_data: bool = False,
    ) -> PolicyReport:
        """Serve a whole arrival trace under one policy.

        Args:
            trace: request events (need not be sorted).
            policy: one of :data:`POLICIES`.
            fidelity: one of :data:`FIDELITIES`; ``"wetlab"`` serves every
                cycle from physically decoded reads (PCR → sequencing →
                clustering → RS) and asserts per-request checksums against
                the reference path.
            keep_data: retain per-request payload bytes in the report
                (tests only; defaults off to bound memory at scale).

        Raises:
            ServiceError: if the policy or fidelity is unknown, the trace
                is empty, or a wetlab-decoded payload fails its reference
                checksum.
        """
        if policy not in POLICIES:
            raise ServiceError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        if fidelity not in FIDELITIES:
            raise ServiceError(
                f"unknown fidelity {fidelity!r}; expected one of {FIDELITIES}"
            )
        events = sorted(trace, key=lambda event: event.time_hours)
        if not events:
            raise ServiceError("cannot simulate an empty trace")
        wetlab = self._wetlab_readout() if fidelity == "wetlab" else None

        requests: list[ReadRequest] = []
        failed: list[FailedRequest] = []

        def reject(index: int, event: RequestEvent, reason: str) -> None:
            failed.append(
                FailedRequest(
                    request_id=index,
                    tenant=event.tenant,
                    object_name=event.object_name,
                    offset=event.offset,
                    length=event.length,
                    arrival_hours=event.time_hours,
                    reason=reason,
                )
            )

        for index, event in enumerate(events):
            # Structurally malformed events are rejected before a request
            # object exists; range-vs-object validation happens at arrival
            # (it needs the catalog).  Either way the failure is the
            # request's alone.
            try:
                requests.append(
                    ReadRequest(
                        request_id=index,
                        tenant=event.tenant,
                        object_name=event.object_name,
                        offset=event.offset,
                        length=event.length,
                        arrival_hours=event.time_hours,
                    )
                )
            except DnaStorageError as exc:
                reject(index, event, str(exc))

        cache = (
            DecodedBlockCache(self.config.cache_capacity_bytes)
            if policy == "batched+cache"
            else None
        )
        queue = RequestQueue()
        sequence_counter = itertools.count()
        heap: list[tuple[float, int, str, object]] = [
            (request.arrival_hours, next(sequence_counter), "arrival", request)
            for request in requests
        ]
        heapq.heapify(heap)
        # Block addressing is computed once per request at admission and
        # shared with the scheduler (halves the extent-walk work).
        blocks_by_id: dict[int, list[tuple[str, int]]] = {}

        completed: list[CompletedRequest] = []
        payloads: dict[int, bytes] = {}
        distinct_requested: dict[tuple[str, int], None] = {}
        totals = {
            "batches": 0,
            "reactions": 0,
            "amplified": 0,
            "accesses": 0,
            "reads": 0,
            "bytes": 0,
        }
        dispatch_scheduled = False
        next_batch_id = 0

        def serve(
            request: ReadRequest,
            completion_hours: float,
            *,
            from_cache: bool,
            batch_id: int | None,
            block_cache=None,
        ) -> None:
            data = self.store.get(
                request.object_name,
                offset=request.offset,
                length=request.length,
                block_cache=block_cache if block_cache is not None else cache,
            )
            if wetlab is not None:
                # Wetlab fidelity: the served bytes came from physically
                # decoded reads; hold them against the digital reference.
                reference = self.store.get(
                    request.object_name,
                    offset=request.offset,
                    length=request.length,
                    block_cache=None,
                )
                if zlib.crc32(data) != zlib.crc32(reference):
                    raise ServiceError(
                        f"wetlab fidelity violation: request "
                        f"{request.request_id} ({request.object_name!r} "
                        f"[{request.offset}, +{len(reference)})) decoded "
                        "bytes differ from the reference path"
                    )
            totals["bytes"] += len(data)
            if keep_data:
                payloads[request.request_id] = data
            completed.append(
                CompletedRequest(
                    request=request,
                    completion_hours=completion_hours,
                    byte_count=len(data),
                    checksum=zlib.crc32(data),
                    served_from_cache=from_cache,
                    batch_id=batch_id,
                )
            )

        def charge(batch: ScheduledBatch) -> None:
            # A dispatch fully covered by the cache is not a wetlab cycle.
            if batch.amplified_block_count > 0:
                totals["batches"] += 1
            totals["reactions"] += batch.reaction_count
            totals["amplified"] += batch.amplified_block_count
            totals["reads"] += (
                batch.amplified_block_count * self.config.reads_per_block
            )
            for key in batch.requested_blocks:
                distinct_requested.setdefault(key, None)

        def dispatch_batch(batch: ScheduledBatch, now: float) -> None:
            """Serve a scheduled batch: cache-covered requests leave at
            dispatch, the rest ride the wetlab cycle to completion."""
            charge(batch)
            if cache is not None:
                view = PinnedCacheView(cache, batch.pinned_payloads)
            else:
                # Cache-less policies still memoize decodes within the
                # batch (wall-clock only; no reported number depends on
                # it — work counters come from the plan).
                view = _BatchScratch()
            pinned_keys = frozenset(key for key, _ in batch.pinned_payloads)
            riders: list[ReadRequest] = []
            for request in batch.requests:
                # A request whose every block was pinned from the cache
                # needs no wetlab of its own: it is answered at dispatch,
                # at memory speed, not at the cycle's completion.
                if cache is not None and all(
                    key in pinned_keys
                    for key in blocks_by_id[request.request_id]
                ):
                    serve(
                        request,
                        now + self.config.cache_service_hours,
                        from_cache=True,
                        batch_id=None,
                        block_cache=view,
                    )
                else:
                    riders.append(request)
            if riders:
                heapq.heappush(
                    heap,
                    (
                        now + self._cycle_hours(batch),
                        next(sequence_counter),
                        "complete",
                        (batch, tuple(riders), view),
                    ),
                )

        def complete(
            batch: ScheduledBatch,
            riders: tuple[ReadRequest, ...],
            view,
            completion: float,
        ) -> None:
            # Serving (and therefore cache fill) happens at cycle
            # completion: blocks decoded by an in-flight cycle must not be
            # cache-visible before the cycle's sequencing finishes.  The
            # batch's schedule-time cache hits were pinned, so evictions
            # during the cycle cannot turn charged work into free reads.
            if wetlab is not None and batch.amplified_block_count > 0:
                # Physically run the cycle: amplify and sequence the
                # merged plan, decode exactly the planned block set, and
                # serve the riders from those wetlab-decoded payloads
                # (write-through makes them cache-visible, now that the
                # cycle is complete).
                planned: dict[str, list[int]] = {}
                for access in batch.plan.accesses:
                    planned.setdefault(access.partition, []).extend(
                        range(access.start_block, access.end_block + 1)
                    )
                reads = wetlab.readout(batch.plan, batch_seed=batch.batch_id)
                payloads = self.store.decode_blocks(planned, reads)
                for (partition_name, block), data in payloads.items():
                    view.put(partition_name, block, data)
            for request in riders:
                serve(
                    request,
                    completion,
                    from_cache=False,
                    batch_id=batch.batch_id,
                    block_cache=view,
                )

        while heap:
            now, _, kind, payload = heapq.heappop(heap)
            if kind == "arrival":
                request = payload
                try:
                    blocks = self.scheduler.request_blocks(request)
                except DnaStorageError as exc:
                    # Unknown object or range past the object's end: this
                    # request fails alone; everyone else keeps being served.
                    # (request_id indexes the time-sorted events list.)
                    reject(request.request_id, events[request.request_id], str(exc))
                    continue
                blocks_by_id[request.request_id] = blocks
                totals["accesses"] += len(blocks)
                if not blocks:
                    # Zero-length read: a valid empty response needing no
                    # wetlab work — answered at front-end speed.
                    serve(
                        request,
                        now + self.config.cache_service_hours,
                        from_cache=False,
                        batch_id=None,
                    )
                    continue
                if policy == "unbatched":
                    batch = self.scheduler.schedule(
                        [request],
                        batch_id=next_batch_id,
                        blocks_by_request=blocks_by_id,
                    )
                    next_batch_id += 1
                    dispatch_batch(batch, now)
                    continue
                if cache is not None and all(
                    cache.contains(partition, block) for partition, block in blocks
                ):
                    # Fast path: every block is hot; no wetlab, no window.
                    for key in blocks:
                        distinct_requested.setdefault(key, None)
                    serve(
                        request,
                        now + self.config.cache_service_hours,
                        from_cache=True,
                        batch_id=None,
                    )
                    continue
                queue.push(request)
                if not dispatch_scheduled:
                    heapq.heappush(
                        heap,
                        (
                            now + self.config.window_hours,
                            next(sequence_counter),
                            "dispatch",
                            None,
                        ),
                    )
                    dispatch_scheduled = True
            elif kind == "dispatch":
                dispatch_scheduled = False
                pending = queue.drain()
                if not pending:
                    continue
                batch = self.scheduler.schedule(
                    pending,
                    cache=cache,
                    batch_id=next_batch_id,
                    blocks_by_request=blocks_by_id,
                )
                next_batch_id += 1
                dispatch_batch(batch, now)
            else:  # complete: deliver the riders and publish their blocks
                batch, riders, view = payload
                complete(batch, riders, view, completion=now)

        checksum = 0
        for item in sorted(completed, key=lambda c: c.request.request_id):
            checksum = zlib.crc32(item.checksum.to_bytes(4, "big"), checksum)
        # The report lists deliveries in completion order (ties broken by
        # admission id); serves were recorded in event order, which may
        # run ahead for requests whose completion lies in the future.
        completed.sort(key=lambda c: (c.completion_hours, c.request.request_id))
        failed.sort(key=lambda f: f.request_id)
        if completed:
            makespan = max(item.completion_hours for item in completed)
            latency = summarize([item.latency_hours for item in completed])
        else:  # every request was rejected at admission
            makespan = 0.0
            latency = SummaryStats(
                count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0,
                minimum=0.0, maximum=0.0,
            )
        return PolicyReport(
            policy=policy,
            fidelity=fidelity,
            completed=tuple(completed),
            failed=tuple(failed),
            latency=latency,
            makespan_hours=makespan,
            throughput_per_hour=len(completed) / makespan if makespan else 0.0,
            batches=totals["batches"],
            pcr_reactions=totals["reactions"],
            amplified_blocks=totals["amplified"],
            requested_block_accesses=totals["accesses"],
            distinct_requested_blocks=len(distinct_requested),
            sequenced_reads=totals["reads"],
            decoded_bytes=totals["bytes"],
            checksum=checksum,
            cache=cache.stats if cache is not None else None,
            payloads=payloads if keep_data else None,
        )

    def compare(
        self,
        trace: Iterable[RequestEvent],
        *,
        policies: tuple[str, ...] = POLICIES,
        fidelity: str = "reference",
    ) -> dict[str, PolicyReport]:
        """Serve the same trace under several policies (fresh cache each).

        The store itself is read-only during simulation, so every policy
        sees identical object contents and must deliver identical bytes.
        """
        events = list(trace)
        return {
            policy: self.run(events, policy, fidelity=fidelity)
            for policy in policies
        }
