"""Decoded-block cache: hot blocks skip the wetlab entirely.

Retrieving a block from DNA costs a PCR reaction plus sequencing reads
(Sections 7.3–7.4); retrieving it from DRAM costs nothing the paper's
cost model can see.  Under the Zipfian block popularity the paper argues
for (Section 7.7.4), a modest byte-bounded LRU over *decoded* blocks
absorbs most of a multi-tenant read stream before it reaches the
scheduler — the cache is therefore the first stage of the serving layer's
read path (see :mod:`repro.service.simulator`).

Keys are ``(partition name, block number)``: the same physical block
shared by many objects' requests dedupes naturally, and store-level
updates invalidate exactly the patched keys
(:meth:`repro.store.object_store.ObjectStore.update`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.exceptions import ServiceError

BlockKey = tuple[str, int]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache instance.

    Counters measure *physical* cache lookups by the serving layer: a
    batch's coalesced requests share one lookup per distinct block (that
    sharing is the point of batching), while requests served on the
    arrival fast path look up their own blocks individually.

    Attributes:
        hits: block lookups served from the cache.
        misses: block lookups that fell through to the store.
        insertions: blocks admitted into the cache.
        evictions: blocks evicted to respect the byte capacity.
        invalidations: blocks dropped because an update made them stale.
        rejections: blocks larger than the whole cache, never admitted.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    rejections: int = 0

    @property
    def lookups(self) -> int:
        """Total block lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class DecodedBlockCache:
    """Byte-capacity-bounded LRU cache of decoded block payloads.

    Attributes:
        capacity_bytes: total payload bytes the cache may hold.
        used_bytes: payload bytes currently held (derived, not settable).
        stats: hit/miss/eviction counters (derived, not settable).
    """

    capacity_bytes: int
    used_bytes: int = field(default=0, init=False)
    stats: CacheStats = field(default_factory=CacheStats, init=False)
    _entries: "OrderedDict[BlockKey, bytes]" = field(
        default_factory=OrderedDict, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ServiceError("capacity_bytes must be positive")

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, partition: str, block: int) -> bool:
        """Peek for a block without touching stats or LRU order.

        The scheduler uses this to decide what wetlab work a batch still
        needs; only the actual serve path (``get``/``put``) is counted.
        """
        return (partition, block) in self._entries

    def get(self, partition: str, block: int) -> bytes | None:
        """Look a block up, refreshing its LRU position on a hit."""
        key = (partition, block)
        data = self._entries.get(key)
        if data is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return data

    def put(self, partition: str, block: int, data: bytes) -> None:
        """Admit a decoded block, evicting LRU entries to fit."""
        if len(data) > self.capacity_bytes:
            self.stats.rejections += 1
            return
        key = (partition, block)
        previous = self._entries.pop(key, None)
        if previous is not None:
            self.used_bytes -= len(previous)
        self._entries[key] = data
        self.used_bytes += len(data)
        self.stats.insertions += 1
        while self.used_bytes > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.used_bytes -= len(evicted)
            self.stats.evictions += 1

    def invalidate(self, partition: str, block: int) -> bool:
        """Drop a block (e.g. after an update patched it)."""
        data = self._entries.pop((partition, block), None)
        if data is None:
            return False
        self.used_bytes -= len(data)
        self.stats.invalidations += 1
        return True

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()
        self.used_bytes = 0


class PinnedCacheView:
    """A cache front holding one batch's working set outside the LRU.

    While a batch is served, the service physically holds two kinds of
    block payloads regardless of cache capacity: the cache hits copied
    out at schedule time, and the blocks its own wetlab cycle just
    decoded.  This view pins both — schedule-time hits up front, fills as
    they happen — so serving the batch touches the store exactly once per
    amplified block (``cache.stats.misses`` counts wetlab-decoded fills,
    nothing double-counts) and LRU evictions during the in-flight hours
    can never turn already-charged work into extra reads.  Everything is
    still written through to the underlying cache for later batches.
    """

    def __init__(
        self,
        cache: DecodedBlockCache,
        pinned: "tuple[tuple[BlockKey, bytes], ...]",
    ) -> None:
        self._cache = cache
        self._pinned = dict(pinned)

    def get(self, partition: str, block: int) -> bytes | None:
        data = self._pinned.get((partition, block))
        if data is not None:
            return data
        data = self._cache.get(partition, block)
        if data is not None:
            self._pinned[(partition, block)] = data
        return data

    def put(self, partition: str, block: int, data: bytes) -> None:
        # The batch keeps its own decoded output in hand...
        self._pinned[(partition, block)] = data
        # ...and writes it through for batches that come later.
        self._cache.put(partition, block, data)
