"""Decoded-block cache: hot blocks skip the wetlab entirely.

Retrieving a block from DNA costs a PCR reaction plus sequencing reads
(Sections 7.3–7.4); retrieving it from DRAM costs nothing the paper's
cost model can see.  Under the Zipfian block popularity the paper argues
for (Section 7.7.4), a modest byte-bounded LRU over *decoded* blocks
absorbs most of a multi-tenant read stream before it reaches the
scheduler — the cache is therefore the first stage of the serving layer's
read path (see :mod:`repro.service.simulator`).

Keys are ``(partition name, block number, birth epoch)``: the same
physical block shared by many objects' requests dedupes naturally, and
store-level updates invalidate exactly the patched keys
(:meth:`repro.store.object_store.ObjectStore.update`).  The *epoch* is
the block's birth generation from the snapshot layer
(:meth:`repro.store.volume.DnaVolume.block_epoch`): a restore rewinds the
allocation frontier and rewritten addresses get a fresh epoch, so a view
from one store generation can never serve another generation's bytes —
while a time-travel read of an unchanged block shares the live read's
entry (copy-on-write guarantees the bytes are the same).  Callers that
never snapshot pass the default epoch 0 everywhere and see the exact
pre-snapshot behaviour.

Eviction is LRU; *admission* is pluggable.  The default admits every
decoded block.  The opt-in ``"tinylfu"`` policy adds a frequency-aware
admission gate (a count-min sketch with periodic aging, TinyLFU-style):
a block only displaces the LRU victim if it has been requested at least
as often, so a scan-like tenant streaming cold blocks through the cache
cannot evict another tenant's hot set.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.exceptions import ServiceError

#: Cache key: ``(partition name, block number, birth epoch)``.
BlockKey = tuple[str, int, int]

#: Supported admission policies of :class:`DecodedBlockCache`.
ADMISSION_POLICIES = ("always", "tinylfu")


class FrequencySketch:
    """Count-min sketch with periodic aging (the TinyLFU frequency proxy).

    Counts are 4 deterministic CRC32-salted rows of small counters; after
    ``sample_size`` recorded accesses every counter is halved, so the
    sketch tracks *recent* popularity rather than all-time counts.  Pure
    Python, no randomized hashing — estimates are reproducible across
    processes.
    """

    def __init__(self, width: int = 1024, depth: int = 4, sample_size: int = 8192):
        if width <= 0 or depth <= 0 or sample_size <= 0:
            raise ServiceError("sketch width, depth and sample_size must be positive")
        self.width = width
        self.depth = depth
        self.sample_size = sample_size
        self._rows = [[0] * width for _ in range(depth)]
        self._recorded = 0

    _MASK64 = (1 << 64) - 1

    def _indexes(self, key: BlockKey) -> list[int]:
        # CRC32 once, then one splitmix64-style finalizer per row.  Any
        # CRC-only row variation (salted init, row-tagged token) is
        # affine in the message, so same-length keys colliding in one
        # row would collide in every row, collapsing the sketch to
        # depth 1; the multiplicative mixes decorrelate the rows (keys
        # now alias everywhere only on a full 32-bit CRC collision).
        # Epoch-0 keys keep the historical token so snapshot-free callers
        # see identical admission decisions.
        if len(key) > 2 and key[2]:
            token = f"{key[0]}\x00{key[1]}\x00{key[2]}".encode("utf-8")
        else:
            token = f"{key[0]}\x00{key[1]}".encode("utf-8")
        seed = zlib.crc32(token)
        indexes = []
        for row in range(self.depth):
            x = (seed + 0x9E3779B97F4A7C15 * (row + 1)) & self._MASK64
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK64
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & self._MASK64
            x ^= x >> 31
            indexes.append(x % self.width)
        return indexes

    def record(self, key: BlockKey) -> None:
        """Count one access to ``key`` (aging once the sample fills up)."""
        for row, index in zip(self._rows, self._indexes(key)):
            row[index] += 1
        self._recorded += 1
        if self._recorded >= self.sample_size:
            self._age()

    def estimate(self, key: BlockKey) -> int:
        """Estimated recent access count of ``key`` (an upper bound)."""
        return min(row[index] for row, index in zip(self._rows, self._indexes(key)))

    def _age(self) -> None:
        for row in self._rows:
            for index, count in enumerate(row):
                if count:
                    row[index] = count >> 1
        self._recorded >>= 1


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache instance.

    Counters measure *physical* cache lookups by the serving layer: a
    batch's coalesced requests share one lookup per distinct block (that
    sharing is the point of batching), while requests served on the
    arrival fast path look up their own blocks individually.

    Attributes:
        hits: block lookups served from the cache.
        misses: block lookups that fell through to the store.
        insertions: blocks admitted into the cache.
        evictions: blocks evicted to respect the byte capacity.
        invalidations: blocks dropped because an update made them stale.
        rejections: blocks larger than the whole cache, never admitted.
        admission_denials: blocks the frequency-aware admission gate
            refused to admit (their recent popularity did not beat the
            would-be eviction victim's; ``"tinylfu"`` policy only).
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    rejections: int = 0
    admission_denials: int = 0

    @property
    def lookups(self) -> int:
        """Total block lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def admission_attempts(self) -> int:
        """Insertions the admission gate ruled on (admitted + denied)."""
        return self.insertions + self.admission_denials

    def as_dict(self) -> dict:
        """The counters under their normalized metric names.

        One canonical spelling for every consumer (metrics registry,
        bench JSON, text summaries): raw counters first, then the
        derived ratios (``hit_rate`` over ``lookups``).
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "rejections": self.rejections,
            "admission_denials": self.admission_denials,
            "admission_attempts": self.admission_attempts,
        }


@dataclass
class DecodedBlockCache:
    """Byte-capacity-bounded cache of decoded block payloads.

    Eviction order is LRU.  With ``admission="tinylfu"`` a count-min
    frequency sketch (fed by every lookup) gates admission under
    pressure: a new block that would force an eviction is only admitted
    if its recent request frequency is at least the LRU victim's, so cold
    scans cannot flush the hot set.

    Attributes:
        capacity_bytes: total payload bytes the cache may hold.
        admission: ``"always"`` (admit everything) or ``"tinylfu"``.
        used_bytes: payload bytes currently held (derived, not settable).
        stats: hit/miss/eviction/admission counters (derived).
    """

    capacity_bytes: int
    admission: str = "always"
    used_bytes: int = field(default=0, init=False)
    stats: CacheStats = field(default_factory=CacheStats, init=False)
    _entries: "OrderedDict[BlockKey, bytes]" = field(
        default_factory=OrderedDict, init=False, repr=False
    )
    _sketch: FrequencySketch | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ServiceError("capacity_bytes must be positive")
        if self.admission not in ADMISSION_POLICIES:
            raise ServiceError(
                f"unknown admission policy {self.admission!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        if self.admission == "tinylfu":
            self._sketch = FrequencySketch()

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, partition: str, block: int, epoch: int = 0) -> bool:
        """Peek for a block without touching stats, LRU order or the sketch.

        The scheduler uses this to decide what wetlab work a batch still
        needs; only the actual serve path (``get``/``put``) is counted.
        """
        return (partition, block, epoch) in self._entries

    def get(self, partition: str, block: int, epoch: int = 0) -> bytes | None:
        """Look a block up, refreshing its LRU position on a hit.

        Every lookup — hit or miss — feeds the admission sketch: demand,
        not residency, is what makes a block worth caching.
        """
        key = (partition, block, epoch)
        if self._sketch is not None:
            self._sketch.record(key)
        data = self._entries.get(key)
        if data is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return data

    def put(self, partition: str, block: int, data: bytes, epoch: int = 0) -> None:
        """Admit a decoded block, evicting LRU entries to fit.

        Under ``"tinylfu"`` the insert is denied instead when it would
        evict a block with a higher recent request frequency.
        """
        if len(data) > self.capacity_bytes:
            self.stats.rejections += 1
            return
        key = (partition, block, epoch)
        previous = self._entries.pop(key, None)
        if previous is not None:
            self.used_bytes -= len(previous)
        elif self._sketch is not None and not self._admit(key, len(data)):
            self.stats.admission_denials += 1
            return
        self._entries[key] = data
        self.used_bytes += len(data)
        self.stats.insertions += 1
        while self.used_bytes > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.used_bytes -= len(evicted)
            self.stats.evictions += 1

    def _admit(self, key: BlockKey, size: int) -> bool:
        """TinyLFU gate: admit freely while there's room; else out-score victims.

        The candidate must be at least as popular as *every* LRU victim
        its bytes would displace (checked cheapest-first; the common case
        is a single victim).
        """
        needed = self.used_bytes + size - self.capacity_bytes
        if needed <= 0:
            return True
        frequency = self._sketch.estimate(key)
        for victim_key, victim_data in self._entries.items():  # LRU order
            if frequency < self._sketch.estimate(victim_key):
                return False
            needed -= len(victim_data)
            if needed <= 0:
                return True
        return True

    def invalidate(self, partition: str, block: int, epoch: int | None = None) -> bool:
        """Drop a block (e.g. after an update patched it).

        With an explicit ``epoch`` only that generation's entry is
        dropped (O(1), what the store does — a block's readers only ever
        query its current birth epoch).  With ``epoch=None`` every
        generation of the block is swept (O(entries), a convenience for
        callers that don't track epochs).
        """
        if epoch is None:
            stale = [key for key in self._entries if key[0] == partition and key[1] == block]
        else:
            stale = [(partition, block, epoch)]
        dropped = False
        for key in stale:
            data = self._entries.pop(key, None)
            if data is None:
                continue
            self.used_bytes -= len(data)
            self.stats.invalidations += 1
            dropped = True
        return dropped

    def metrics_view(self) -> dict:
        """Normalized counters plus occupancy, as one JSON-able dict.

        The shape a :class:`~repro.observability.metrics.MetricsRegistry`
        collector polls (see :meth:`bind_metrics`); ``stats`` remains the
        object-level view for direct inspection.
        """
        view = self.stats.as_dict()
        view["used_bytes"] = self.used_bytes
        view["capacity_bytes"] = self.capacity_bytes
        view["entries"] = len(self._entries)
        return view

    def bind_metrics(self, registry, prefix: str = "service.cache") -> None:
        """Expose this cache's stats through ``registry`` lazily.

        Registers :meth:`metrics_view` as a snapshot-time collector under
        ``prefix`` — nothing is added to the cache's hot path.
        """
        registry.register_collector(prefix, self.metrics_view)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()
        self.used_bytes = 0


class PinnedCacheView:
    """A cache front holding one batch's working set outside the LRU.

    While a batch is served, the service physically holds two kinds of
    block payloads regardless of cache capacity: the cache hits copied
    out at schedule time, and the blocks its own wetlab cycle just
    decoded.  This view pins both — schedule-time hits up front, fills as
    they happen — so serving the batch touches the store exactly once per
    amplified block (``cache.stats.misses`` counts wetlab-decoded fills,
    nothing double-counts) and LRU evictions during the in-flight hours
    can never turn already-charged work into extra reads.  Everything is
    still written through to the underlying cache for later batches
    (subject to its admission policy).
    """

    def __init__(
        self,
        cache: DecodedBlockCache,
        pinned: "tuple[tuple[tuple[str, int], bytes], ...]",
    ) -> None:
        self._cache = cache
        # Pinned payloads are keyed (partition, block): a block's birth
        # epoch cannot change while its batch is in flight (epochs only
        # move on snapshot/restore, never mid-run), so the pin is the
        # run-local identity and the epoch matters only for the
        # write-through to the shared cache.
        self._pinned = dict(pinned)

    def get(self, partition: str, block: int, epoch: int = 0) -> bytes | None:
        data = self._pinned.get((partition, block))
        if data is not None:
            return data
        data = self._cache.get(partition, block, epoch)
        if data is not None:
            self._pinned[(partition, block)] = data
        return data

    def put(self, partition: str, block: int, data: bytes, epoch: int = 0) -> None:
        # The batch keeps its own decoded output in hand...
        self._pinned[(partition, block)] = data
        # ...and writes it through for batches that come later.
        self._cache.put(partition, block, data, epoch)
