"""Run telemetry: the bridge between the serving loop and observability.

:class:`RunTelemetry` is instantiated per traced
:meth:`~repro.service.simulator.ServicePipeline.run` and records the
sim-clock side of the trace — one root span per admitted request on its
tenant's track, phase children (write-barrier holds, queue wait, wetlab
cycle rides, synthesis, cache service), and per-unit lane-occupancy spans
— plus the run's :class:`~repro.observability.metrics.MetricsRegistry`
counters.  Wall-clock spans (decode workers, pipeline stages, readout
sampling) are recorded by the layers below through the ambient tracer the
pipeline activates for the event loop's extent.

Every hook is a plain method the simulator's closures call behind an
``if tel is not None`` guard, so an untraced run never constructs this
object and pays nothing.  The hooks only *record* — they never touch the
event heap, RNG state or store — which is what keeps traced outcomes
byte-identical to untraced ones.
"""

from __future__ import annotations

from repro.observability.export import RunObservability
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Span, Tracer


class RunTelemetry:
    """Span and metric recording for one traced pipeline run.

    Args:
        policy: the serving policy of the run (span/metric annotation).
        fidelity: the read-path fidelity of the run.
    """

    def __init__(self, policy: str, fidelity: str) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.policy = policy
        self.fidelity = fidelity
        #: request_id -> open root span (closed on serve/ack/failure).
        self._roots: dict[int, Span] = {}
        #: request_id -> open write_barrier span (held reads).
        self._barriers: dict[int, Span] = {}
        #: request_id -> open queue_wait span.
        self._queued: dict[int, Span] = {}
        #: request_id -> open synthesis span (dispatched writes).
        self._synthesis: dict[int, Span] = {}

    # ------------------------------------------------------------------
    # Request lifecycle (sim clock)
    # ------------------------------------------------------------------
    def admitted(self, request, now: float) -> None:
        """Open the request's root span on its tenant's track."""
        self._roots[request.request_id] = self.tracer.begin(
            f"{request.op} {request.object_name}",
            start=now,
            track=f"tenant:{request.tenant}",
            parent=None,
            request_id=request.request_id,
            tenant=request.tenant,
            op=request.op,
        )
        self.metrics.counter("service.requests.admitted").inc()

    def held(self, request, now: float) -> None:
        """The read is behind an outstanding write on its object."""
        root = self._roots.get(request.request_id)
        if root is not None:
            self._barriers[request.request_id] = self.tracer.begin(
                "write_barrier", start=now, parent=root
            )
        self.metrics.counter("service.requests.barrier_held").inc()

    def released(self, request, now: float) -> None:
        """The write barrier cleared; the read re-enters admission."""
        span = self._barriers.pop(request.request_id, None)
        if span is not None:
            self.tracer.finish(span, now)

    def queued(self, request, now: float) -> None:
        """The request entered the scheduling queue."""
        root = self._roots.get(request.request_id)
        if root is not None:
            self._queued[request.request_id] = self.tracer.begin(
                "queue_wait", start=now, parent=root
            )

    def dispatched(self, request, now: float) -> None:
        """The request left the queue (batch dispatch / write pump)."""
        span = self._queued.pop(request.request_id, None)
        if span is not None:
            self.tracer.finish(span, now)
            self.metrics.histogram("service.queue.wait_hours").observe(
                span.duration
            )

    def front_end(self, request, now: float, end: float, name: str) -> None:
        """A front-end serve phase (cache hit / empty read), no wetlab."""
        root = self._roots.get(request.request_id)
        if root is not None:
            self.tracer.record(name, start=now, end=end, parent=root)

    def batch_scheduled(self, batch, queue_depth: int, now: float) -> None:
        """A dispatch fired: one scheduled batch left a queue of this depth."""
        self.metrics.histogram("service.queue.depth_at_dispatch").observe(
            queue_depth
        )
        self.metrics.histogram("service.batch.occupancy").observe(
            len(batch.requests)
        )

    def charged(self, batch, reads_per_block: int) -> None:
        """Wetlab work charged for one scheduled batch (retries included)."""
        self.metrics.counter("service.wetlab.pcr_reactions").inc(
            batch.reaction_count
        )
        self.metrics.counter("service.wetlab.amplified_blocks").inc(
            batch.amplified_block_count
        )
        self.metrics.counter("service.wetlab.sequenced_reads").inc(
            batch.amplified_block_count * reads_per_block
        )

    def cycle(
        self,
        batch,
        riders,
        schedule,
        now: float,
        end: float,
        attempt: int,
        reads_per_block: int,
    ) -> None:
        """A wetlab cycle went on the lane pool; completion is booked.

        Records one ``wetlab_cycle`` child per riding request and one
        lane-occupancy span per readout unit on its lane's track.  The
        schedule's times are *absolute* sim hours on the shared pool; a
        unit that started after dispatch waited behind an earlier cycle's
        work on its lane, recorded as a ``lane_wait`` span and the
        ``service.lane.queue_hours`` histogram.
        """
        for request in riders:
            root = self._roots.get(request.request_id)
            if root is None:
                continue
            self.tracer.record(
                "wetlab_cycle",
                start=now,
                end=end,
                parent=root,
                batch_id=batch.batch_id,
                attempt=attempt,
                reads_per_block=reads_per_block,
            )
        for access, (lane, start, stop) in zip(batch.plan.accesses, schedule):
            wait = start - now
            if wait > 1e-9:
                self.tracer.record(
                    "lane_wait",
                    start=now,
                    end=start,
                    track=f"lane:{lane}",
                    parent=None,
                    batch_id=batch.batch_id,
                    partition=access.partition,
                )
            self.metrics.histogram("service.lane.queue_hours").observe(
                max(wait, 0.0)
            )
            self.tracer.record(
                f"unit:{access.partition}",
                start=start,
                end=stop,
                track=f"lane:{lane}",
                parent=None,
                batch_id=batch.batch_id,
                attempt=attempt,
                blocks=access.block_count,
            )
            self.metrics.histogram("service.lane.unit_hours").observe(
                stop - start
            )
        self.metrics.counter("service.wetlab.cycles").inc()
        self.metrics.histogram("service.wetlab.cycle_hours").observe(end - now)

    # ------------------------------------------------------------------
    # Tenant QoS (admission decisions, deadlines)
    # ------------------------------------------------------------------
    def qos_decision(self, decision, now: float) -> None:
        """One admission window's QoS verdicts, counted per tenant.

        Throttled/deferred are *event* counts (a request deferred across
        three windows counts three times — each window it waited).
        """
        for verdict, requests in (
            ("admitted", decision.admitted),
            ("throttled", decision.throttled),
            ("deferred", decision.deferred),
        ):
            if not requests:
                continue
            self.metrics.counter(f"service.qos.{verdict}").inc(len(requests))
            for request in requests:
                self.metrics.counter(
                    f"service.qos.{verdict}.{request.tenant}"
                ).inc()

    def deadline_violation(self, request, completion: float) -> None:
        """A served read overran its deadline budget (counted, not dropped)."""
        self.metrics.counter("service.qos.deadline_violations").inc()
        self.metrics.counter(
            f"service.qos.deadline_violations.{request.tenant}"
        ).inc()

    def retried(self, rider_count: int) -> None:
        """A retry cycle was scheduled for decode-failed riders."""
        self.metrics.counter("service.retry.cycles").inc()
        self.metrics.counter("service.retry.requests").inc(rider_count)

    def decode_failures(self, count: int) -> None:
        if count:
            self.metrics.counter("service.decode.failures").inc(count)

    def synthesis_dispatched(self, order, now: float) -> None:
        """A synthesis order went to the vendor; open per-write spans."""
        for outcome in order.applied:
            root = self._roots.get(outcome.request.request_id)
            if root is not None:
                self._synthesis[outcome.request.request_id] = self.tracer.begin(
                    "synthesis",
                    start=now,
                    parent=root,
                    order_id=order.order_id,
                )
        self.metrics.counter("service.synthesis.orders").inc()
        self.metrics.counter("service.synthesis.strands").inc(
            order.strand_count
        )
        self.metrics.counter("service.synthesis.nucleotides").inc(
            order.nucleotide_count
        )

    def synthesis_committed(self, order, now: float) -> None:
        """The order delivered; close its writes' synthesis spans."""
        dispatched_at = None
        for outcome in order.applied:
            span = self._synthesis.pop(outcome.request.request_id, None)
            if span is not None:
                dispatched_at = span.start
                self.tracer.finish(span, now)
        if dispatched_at is not None:
            self.metrics.histogram("service.synthesis.order_hours").observe(
                now - dispatched_at
            )

    def served(
        self, request, completion: float, *, from_cache: bool, attempts: int
    ) -> None:
        """The request delivered; close its root span as completed."""
        root = self._roots.pop(request.request_id, None)
        if root is None:
            return
        root.attributes["status"] = "completed"
        root.attributes["from_cache"] = from_cache
        if attempts > 1:
            root.attributes["attempts"] = attempts
        self.tracer.finish(root, completion)
        kind = "write" if request.is_write else "read"
        self.metrics.counter(f"service.requests.completed.{kind}").inc()
        self.metrics.histogram(
            f"service.request.{kind}_latency_sim_hours"
        ).observe(completion - request.arrival_hours)

    def failed(self, request_id: int, now: float, reason: str) -> None:
        """The request was rejected; close its spans as failed."""
        for pending in (self._barriers, self._queued, self._synthesis):
            span = pending.pop(request_id, None)
            if span is not None:
                self.tracer.finish(span, now)
        root = self._roots.pop(request_id, None)
        if root is not None:
            root.attributes["status"] = "failed"
            root.attributes["reason"] = reason
            self.tracer.finish(root, now)
        self.metrics.counter("service.requests.failed").inc()

    # ------------------------------------------------------------------
    # Run finalization
    # ------------------------------------------------------------------
    def finalize(
        self,
        *,
        makespan_hours: float,
        wetlab_lanes: int,
        lane_busy_hours_by_lane,
        lane_schedule_horizon_hours: float = 0.0,
        stage_seconds: dict[str, float] | None = None,
    ) -> RunObservability:
        """Snapshot the run into a :class:`RunObservability` bundle.

        Open spans (there should be none after a clean run) are left
        open; the exporter drops them.  Gauges recorded here describe
        end-of-run state: lane-pool shape, true per-lane busy hours, and
        the decode stages' aggregate wall seconds.  Utilization gauges
        divide by the same horizon the report's
        :meth:`~repro.service.simulator.PolicyReport.lane_utilization`
        uses — the later of the makespan and the pool's last lane end —
        so they land in ``[0, 1]`` and agree with the report.
        """
        self.metrics.gauge("service.run.makespan_sim_hours").set(makespan_hours)
        self.metrics.gauge("service.lanes.count").set(wetlab_lanes)
        horizon = max(makespan_hours, lane_schedule_horizon_hours)
        for lane, busy in enumerate(lane_busy_hours_by_lane):
            self.metrics.gauge(f"service.lane.{lane}.busy_sim_hours").set(busy)
            if horizon > 0:
                self.metrics.gauge(f"service.lane.{lane}.utilization").set(
                    busy / horizon
                )
        for name, seconds in (stage_seconds or {}).items():
            self.metrics.gauge(f"decode.stage_wall_seconds.{name}").set(seconds)
        self.metrics.gauge("service.run.policy_is_cached").set(
            1.0 if self.policy == "batched+cache" else 0.0
        )
        return RunObservability(
            spans=list(self.tracer.spans), metrics=self.metrics.snapshot()
        )


__all__ = ["RunTelemetry"]
