"""Shared wetlab lane pool and per-tenant QoS admission.

Two subsystems the serving pipeline composes:

**SharedLanePool** — thermocycler/flow-cell lanes as a *persistent*
resource.  The original simulator gave every wetlab cycle a fresh pool of
``wetlab_lanes`` stations at relative time zero, so overlapping cycles
silently multiplied the hardware and the per-lane "utilization" metrics
were really a pressure signal that could exceed 1.0.  The shared pool
keeps one free-at frontier per physical lane across the whole run: a
cycle's readout units queue onto busy lanes (``start = max(now,
lane_free_at)``) instead of overflowing the pool, every busy interval on
a lane is disjoint, and per-lane busy time divided by the schedule
horizon is a true utilization in [0, 1].

**Tenant QoS** — admission control into the batch scheduler:

* :class:`TenantQoS` / :class:`QoSConfig` declare per-tenant weight,
  token-bucket rate limit (in block-accesses per simulated hour —
  the unit the wetlab bill is denominated in), priority class and
  deadline budget;
* :class:`TokenBucket` is the deterministic, sim-clock refilled limiter;
* :func:`weighted_fair_shares` is the water-filling share allocator —
  idle tenants' unused share is redistributed to backlogged ones in
  proportion to weight;
* :class:`QoSAdmission` ties them together per dispatch: rate-limit
  each tenant's FIFO prefix, then admit flows priority class by
  priority class under the window's block budget, carrying unspent
  share as a deficit so large requests are never starved.

QoS is configuration-off by default (``ServiceConfig(qos=None)``), and —
like tracing — enabling it never changes a request's decoded bytes: the
per-object FIFO write barrier pins which writes every read observes, so
admission control reshapes *when* work happens, never *what* is read.

Everything here is pure Python, deterministic, and sim-clock only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.exceptions import ServiceError
from repro.service.requests import ServiceRequest

#: Float-accumulation slack for token and share comparisons.
_EPS = 1e-9


class SharedLanePool:
    """A persistent pool of wetlab lanes shared by every cycle of a run.

    Each lane keeps an absolute free-at frontier (simulated hours).
    Scheduling a cycle's unit durations assigns each unit, in submission
    order, to the lane that can *start* it earliest (ties broken by lane
    index) — units queue behind earlier cycles' work instead of
    pretending a fresh pool exists.

    Args:
        lane_count: number of physical lanes (> 0).
    """

    def __init__(self, lane_count: int) -> None:
        if lane_count <= 0:
            raise ServiceError("lane_count must be positive")
        self._free_at = [0.0] * lane_count
        self._busy = [0.0] * lane_count

    @property
    def lane_count(self) -> int:
        return len(self._free_at)

    @property
    def busy_hours_by_lane(self) -> tuple[float, ...]:
        """Total booked unit time per lane (disjoint intervals)."""
        return tuple(self._busy)

    @property
    def horizon_hours(self) -> float:
        """Latest booked completion across all lanes (0.0 when idle)."""
        return max(self._free_at)

    def schedule(
        self, now: float, durations: list[float]
    ) -> list[tuple[int, float, float]]:
        """Book a cycle's units onto the pool at absolute time ``now``.

        Returns one ``(lane, start_hours, end_hours)`` tuple per unit in
        submission order, on the absolute simulated clock.  A unit starts
        at ``max(now, lane_free_at)`` — i.e. it waits for the lane's
        earlier bookings to drain.  Fully deterministic.
        """
        if now < 0:
            raise ServiceError("schedule time must be non-negative")
        schedule: list[tuple[int, float, float]] = []
        for duration in durations:
            if duration < 0:
                raise ServiceError("unit durations must be non-negative")
            lane = min(
                range(len(self._free_at)),
                key=lambda index: (max(self._free_at[index], now), index),
            )
            start = max(self._free_at[lane], now)
            end = start + duration
            self._free_at[lane] = end
            self._busy[lane] += duration
            schedule.append((lane, start, end))
        return schedule


@dataclass(frozen=True)
class TenantQoS:
    """One tenant's QoS profile.

    Attributes:
        weight: weighted-fair share weight (> 0); a tenant with twice the
            weight gets twice the block budget under contention.
        rate_blocks_per_hour: token-bucket refill rate in block-accesses
            per simulated hour (``None`` = unlimited).
        burst_blocks: token-bucket capacity (``None`` = one hour's worth
            of the rate).  A single request costing more than the burst
            is admitted only from a full bucket, leaving a debt that
            repays at the refill rate — so oversized reads are slowed,
            never starved.
        priority: admission class (0 = most urgent); classes are served
            in strict order, each sharing the window budget fairly.
        deadline_hours: completion budget from arrival; violations are
            counted on the report (no request is dropped for missing it).
    """

    weight: float = 1.0
    rate_blocks_per_hour: float | None = None
    burst_blocks: float | None = None
    priority: int = 1
    deadline_hours: float | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ServiceError("QoS weight must be positive")
        if self.rate_blocks_per_hour is not None and self.rate_blocks_per_hour <= 0:
            raise ServiceError("rate_blocks_per_hour must be positive when set")
        if self.burst_blocks is not None:
            if self.burst_blocks <= 0:
                raise ServiceError("burst_blocks must be positive when set")
            if self.rate_blocks_per_hour is None:
                raise ServiceError("burst_blocks requires rate_blocks_per_hour")
        if self.priority < 0:
            raise ServiceError("priority must be non-negative")
        if self.deadline_hours is not None and self.deadline_hours <= 0:
            raise ServiceError("deadline_hours must be positive when set")


def _coerce_profile(value: "TenantQoS | Mapping") -> TenantQoS:
    if isinstance(value, TenantQoS):
        return value
    if isinstance(value, Mapping):
        return TenantQoS(**dict(value))
    raise ServiceError(
        "QoS profiles must be TenantQoS instances or field mappings, "
        f"got {type(value).__name__}"
    )


@dataclass(frozen=True)
class QoSConfig:
    """Per-tenant QoS policy of one serving run.

    Attributes:
        profiles: tenant name -> :class:`TenantQoS` (plain field dicts —
            e.g. from :func:`repro.workloads.tenant_qos_profiles` — are
            coerced, keeping the workloads package free of service
            imports).
        default: profile applied to tenants without an entry.
        window_block_budget: block-accesses one dispatch window may admit
            into the batch scheduler (``None`` = unlimited: rate limits
            and priorities still apply, but no weighted-fair division
            happens because there is nothing to divide).
    """

    profiles: Mapping[str, TenantQoS] = field(default_factory=dict)
    default: TenantQoS = field(default_factory=TenantQoS)
    window_block_budget: int | None = None

    def __post_init__(self) -> None:
        coerced = {
            tenant: _coerce_profile(profile)
            for tenant, profile in self.profiles.items()
        }
        object.__setattr__(self, "profiles", coerced)
        object.__setattr__(self, "default", _coerce_profile(self.default))
        if self.window_block_budget is not None and self.window_block_budget < 1:
            raise ServiceError("window_block_budget must be >= 1 when set")

    def profile(self, tenant: str) -> TenantQoS:
        """The tenant's profile, falling back to the default."""
        return self.profiles.get(tenant, self.default)


class TokenBucket:
    """A deterministic token bucket refilled by simulated time.

    Tokens are denominated in block-accesses.  The bucket starts full.
    A cost larger than the capacity is affordable only from a full
    bucket and leaves the balance negative — a debt that repays at the
    refill rate, so oversized requests are paced, not starved.
    """

    def __init__(self, rate_per_hour: float, burst: float, now: float) -> None:
        if rate_per_hour <= 0:
            raise ServiceError("token bucket rate must be positive")
        if burst <= 0:
            raise ServiceError("token bucket burst must be positive")
        self.rate = rate_per_hour
        self.burst = burst
        self._tokens = burst
        self._last = now

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = max(self._last, now)

    def available(self, now: float) -> float:
        """Token balance at ``now`` (may be negative while repaying debt)."""
        self._refill(now)
        return self._tokens

    def affordable(self, cost: float, now: float) -> bool:
        """Could ``cost`` be charged at ``now``?  Does not deduct."""
        self._refill(now)
        return self._tokens + _EPS >= min(cost, self.burst)

    def charge(self, cost: float, now: float) -> None:
        """Deduct ``cost`` (the balance may go negative, see class doc)."""
        self._refill(now)
        self._tokens -= cost


def weighted_fair_shares(
    demands: Mapping[str, float],
    weights: Mapping[str, float],
    capacity: float,
) -> dict[str, float]:
    """Water-filling weighted-fair division of ``capacity`` over demands.

    Each tenant receives at most its demand; capacity a tenant cannot use
    (demand below its weighted slice) is redistributed to the still-hungry
    tenants in proportion to their weights, round by round, until either
    every demand is met or the capacity is exhausted.  Properties:

    * ``sum(shares) <= min(capacity, sum(demands))`` (up to float slack);
    * a tenant never gets more than its demand;
    * under contention a tenant's share is at least its weighted
      proportion of capacity (max-min weighted fairness);
    * idle tenants (zero demand) consume nothing.

    Deterministic: tenants are processed in sorted-name order.
    """
    if capacity < 0:
        raise ServiceError("capacity must be non-negative")
    shares = {tenant: 0.0 for tenant in demands}
    for tenant, demand in demands.items():
        if demand < 0:
            raise ServiceError("demands must be non-negative")
        if tenant not in weights:
            raise ServiceError(f"no weight for tenant {tenant!r}")
        if weights[tenant] <= 0:
            raise ServiceError("weights must be positive")
    remaining = float(capacity)
    while remaining > _EPS:
        hungry = sorted(
            tenant for tenant, demand in demands.items()
            if shares[tenant] < demand - _EPS
        )
        if not hungry:
            break
        total_weight = sum(weights[tenant] for tenant in hungry)
        allocation = {
            tenant: remaining * weights[tenant] / total_weight for tenant in hungry
        }
        saturated = [
            tenant
            for tenant in hungry
            if shares[tenant] + allocation[tenant] >= demands[tenant] - _EPS
        ]
        if saturated:
            # Cap the saturated tenants at their demand and re-divide the
            # slack among the rest next round.
            for tenant in saturated:
                grant = demands[tenant] - shares[tenant]
                shares[tenant] = demands[tenant]
                remaining -= grant
        else:
            # Nobody saturates: the proportional split is final.
            for tenant in hungry:
                shares[tenant] += allocation[tenant]
            remaining = 0.0
    return shares


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one dispatch window's QoS admission pass.

    Attributes:
        admitted: requests entering the batch scheduler this window.
        throttled: requests a token bucket held back (their tenant's
            later requests wait behind them — per-tenant FIFO).
        deferred: bucket-eligible requests the window's block budget
            could not fit; they stay queued for the next window.

    A request can appear throttled/deferred at several consecutive
    dispatches before finally admitting; the pipeline's counters are
    therefore *event* counts, not request counts.
    """

    admitted: tuple[ServiceRequest, ...] = ()
    throttled: tuple[ServiceRequest, ...] = ()
    deferred: tuple[ServiceRequest, ...] = ()


class QoSAdmission:
    """Stateful per-run admission engine over a :class:`QoSConfig`.

    One instance lives for one pipeline run; it owns the tenants' token
    buckets and deficit carries.  :meth:`admit` is called at each
    dispatch with the queued reads (in queue order) and decides which of
    them enter this window's batch:

    1. **Rate limits** — each tenant's requests are screened oldest
       first against its token bucket; the first unaffordable request
       blocks the tenant's tail (per-tenant FIFO, so buckets pace flows
       without reordering them).
    2. **Priority classes** — bucket-eligible requests are grouped into
       ``(priority, tenant)`` flows; classes admit in strict ascending
       order (an explicit ``request.priority`` overrides the profile).
    3. **Weighted-fair budget** — within a class, the remaining window
       block budget is divided by :func:`weighted_fair_shares`; each
       flow admits its FIFO prefix that fits its share plus its carried
       deficit.  Unspent share of a still-backlogged flow carries to the
       next window (bounded by the budget), so a large head request
       eventually accumulates the credit to admit.
    4. **Progress guarantee** — if the pass admitted nothing but
       eligible requests exist, the oldest eligible request of the most
       urgent class is admitted unconditionally: the pipeline always
       advances, whatever the budget.

    Buckets are only charged for requests actually admitted.
    """

    def __init__(self, config: QoSConfig) -> None:
        self._config = config
        self._buckets: dict[str, TokenBucket] = {}
        self._carry: dict[str, float] = {}

    def _bucket(self, tenant: str, now: float) -> TokenBucket | None:
        profile = self._config.profile(tenant)
        if profile.rate_blocks_per_hour is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            burst = (
                profile.burst_blocks
                if profile.burst_blocks is not None
                else profile.rate_blocks_per_hour
            )
            bucket = TokenBucket(profile.rate_blocks_per_hour, burst, now)
            self._buckets[tenant] = bucket
        return bucket

    def admit(
        self,
        pending: list[ServiceRequest],
        now: float,
        cost_of: Callable[[ServiceRequest], float],
    ) -> AdmissionDecision:
        """Decide one dispatch window's admissions (see class doc)."""
        throttled: list[ServiceRequest] = []
        admitted: list[ServiceRequest] = []
        deferred: list[ServiceRequest] = []
        #: (priority, tenant) -> bucket-eligible requests, queue order.
        flows: dict[tuple[int, str], list[ServiceRequest]] = {}
        blocked: dict[str, bool] = {}
        provisional: dict[str, float] = {}
        for request in pending:
            tenant = request.tenant
            cost = cost_of(request)
            if cost < 0:
                raise ServiceError("request admission cost must be non-negative")
            bucket = self._bucket(tenant, now)
            if blocked.get(tenant):
                throttled.append(request)
                continue
            if bucket is not None:
                balance = bucket.available(now) - provisional.get(tenant, 0.0)
                if balance + _EPS < min(cost, bucket.burst):
                    # Head-of-line: the tenant's tail waits behind this
                    # request so the bucket paces without reordering.
                    blocked[tenant] = True
                    throttled.append(request)
                    continue
                provisional[tenant] = provisional.get(tenant, 0.0) + cost
            profile = self._config.profile(tenant)
            priority = (
                request.priority if request.priority is not None else profile.priority
            )
            flows.setdefault((priority, tenant), []).append(request)

        budget = self._config.window_block_budget
        if budget is None:
            for key in sorted(flows):
                admitted.extend(flows[key])
        else:
            remaining = float(budget)
            for level in sorted({priority for priority, _ in flows}):
                tenants_at = sorted(
                    tenant for priority, tenant in flows if priority == level
                )
                demands = {
                    tenant: sum(cost_of(request) for request in flows[(level, tenant)])
                    for tenant in tenants_at
                }
                weights = {
                    tenant: self._config.profile(tenant).weight
                    for tenant in tenants_at
                }
                shares = weighted_fair_shares(demands, weights, max(remaining, 0.0))
                for tenant in tenants_at:
                    allowance = shares[tenant] + self._carry.get(tenant, 0.0)
                    taken = 0.0
                    backlogged = False
                    for request in flows[(level, tenant)]:
                        cost = cost_of(request)
                        if not backlogged and taken + cost <= allowance + _EPS:
                            admitted.append(request)
                            taken += cost
                        else:
                            # Per-flow FIFO: once one request misses the
                            # share, the flow's tail waits with it.
                            backlogged = True
                            deferred.append(request)
                    remaining -= taken
                    if backlogged:
                        # Deficit round-robin: unspent allowance carries so
                        # a request costlier than any one share still
                        # accumulates credit (bounded by the budget).
                        self._carry[tenant] = min(allowance - taken, float(budget))
                    else:
                        self._carry.pop(tenant, None)
            if not admitted and deferred:
                # Progress guarantee: the window always advances.  The
                # oldest eligible request of the most urgent class admits
                # unconditionally (its flow's carry resets — the grant
                # replaces the credit).
                level = min(priority for priority, _ in flows)
                oldest = min(
                    (
                        request
                        for (priority, _), queued in flows.items()
                        if priority == level
                        for request in queued
                    ),
                    key=lambda request: request.request_id,
                )
                deferred.remove(oldest)
                admitted.append(oldest)
                self._carry.pop(oldest.tenant, None)

        for request in admitted:
            bucket = self._bucket(request.tenant, now)
            if bucket is not None:
                bucket.charge(cost_of(request), now)
        return AdmissionDecision(
            admitted=tuple(admitted),
            throttled=tuple(throttled),
            deferred=tuple(deferred),
        )


__all__ = [
    "AdmissionDecision",
    "QoSAdmission",
    "QoSConfig",
    "SharedLanePool",
    "TenantQoS",
    "TokenBucket",
    "weighted_fair_shares",
]
