"""Request and completion records for the serving layer.

A :class:`ServiceRequest` is one tenant's operation against the object
store — a byte-range ``read``, a whole-object ``put``, an in-place
``update`` patch, or a ``delete``.  A :class:`CompletedRequest` is its
fully-served outcome, carrying the latency accounting the simulator
reports as the Section 7.4-style p50/p95/p99 numbers.  Payload bytes are
summarized as a CRC32 checksum so simulations over tens of thousands of
requests stay memory-bounded while still letting benchmarks prove that
every serving policy decoded identical bytes.

``ReadRequest`` remains as an alias of :class:`ServiceRequest` (whose
default operation is ``"read"``) for callers of the original read-only
serving layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ServiceError

#: Operations the serving pipeline accepts.
OPERATIONS = ("read", "put", "update", "delete")

#: Operations that mutate the store (queued into synthesis orders).
WRITE_OPERATIONS = ("put", "update", "delete")


@dataclass(frozen=True)
class ServiceRequest:
    """One tenant operation admitted to the service front-end.

    Attributes:
        request_id: unique, monotonically assigned admission id.
        tenant: identifier of the issuing tenant.
        object_name: target object in the store catalog.
        offset / length: byte range of a ``read`` (``length=None`` reads
            to the end of the object); ``offset`` is also the patch
            position of an ``update``.
        arrival_hours: arrival time on the simulated clock.
        op: one of :data:`OPERATIONS`.
        payload: the bytes to write (``put``/``update`` only).
        as_of: optional historical timestamp (simulated hours) for a
            *time-travel read*: the object is served as of the committed
            store state at that time (resolved against the pipeline's
            snapshot timeline).  Reads only; historical state is
            immutable, so such reads neither wait for pending writes nor
            block them.
        priority: optional per-request QoS admission class (0 = most
            urgent), overriding the tenant profile's class when the
            pipeline runs with a :class:`~repro.service.scheduler_qos.
            QoSConfig`; ignored (and harmless) otherwise.
        deadline_hours: optional per-request completion budget from
            arrival (simulated hours), overriding the tenant profile's
            deadline; violations are counted, never dropped.
    """

    request_id: int
    tenant: str
    object_name: str
    offset: int = 0
    length: int | None = None
    arrival_hours: float = 0.0
    op: str = "read"
    payload: bytes | None = None
    as_of: float | None = None
    priority: int | None = None
    deadline_hours: float | None = None

    def __post_init__(self) -> None:
        if self.op not in OPERATIONS:
            raise ServiceError(
                f"unknown operation {self.op!r}; expected one of {OPERATIONS}"
            )
        if self.offset < 0:
            raise ServiceError("request offset must be non-negative")
        if self.length is not None and self.length < 0:
            raise ServiceError("request length must be non-negative (or None)")
        if self.arrival_hours < 0:
            raise ServiceError("arrival_hours must be non-negative")
        if self.op in ("put", "update"):
            if not self.payload:
                raise ServiceError(f"{self.op} requests require a payload")
        elif self.payload is not None:
            raise ServiceError(f"{self.op} requests cannot carry a payload")
        if self.op in ("put", "delete") and (self.offset or self.length is not None):
            raise ServiceError(f"{self.op} requests address whole objects")
        if self.op == "update" and self.length is not None:
            # The patch extent is the payload itself; a length field
            # would be silently ignored, so reject it outright.
            raise ServiceError(
                "update requests are sized by their payload; length must be None"
            )
        if self.as_of is not None:
            if self.op != "read":
                raise ServiceError("as_of is only valid on read requests")
            if self.as_of < 0:
                raise ServiceError("as_of must be non-negative")
        if self.priority is not None and self.priority < 0:
            raise ServiceError("priority must be non-negative (0 = most urgent)")
        if self.deadline_hours is not None and self.deadline_hours <= 0:
            raise ServiceError("deadline_hours must be positive when set")

    @property
    def is_write(self) -> bool:
        """True for operations that mutate the store."""
        return self.op in WRITE_OPERATIONS


#: Backwards-compatible name for the read-only serving layer's requests.
ReadRequest = ServiceRequest


@dataclass(frozen=True)
class CompletedRequest:
    """The served outcome of one request.

    Attributes:
        request: the originating request.
        completion_hours: simulated time the response (or write
            acknowledgment) was delivered.
        byte_count: decoded payload size (reads) or bytes written.
        checksum: CRC32 of the decoded/written payload.
        served_from_cache: True when every block came from the decoded
            block cache (no wetlab work charged).
        batch_id: the wetlab cycle (reads) or synthesis order (writes)
            that served the request, or ``None`` for pure cache hits.
        attempts: wetlab cycles this request rode, counting retries
            (1 = served by its first cycle).
    """

    request: ServiceRequest
    completion_hours: float
    byte_count: int
    checksum: int
    served_from_cache: bool
    batch_id: int | None
    attempts: int = 1

    @property
    def latency_hours(self) -> float:
        """Admission-to-delivery latency on the simulated clock."""
        return self.completion_hours - self.request.arrival_hours


@dataclass(frozen=True)
class FailedRequest:
    """A request the service rejected without aborting anyone else.

    Malformed trace events (negative ranges), unknown objects, ranges past
    the object's end, writes that cannot apply (duplicate names, exhausted
    update slots) and reads whose blocks still fail to decode after the
    retry budget all fail *individually*: the offending request gets a
    rejection outcome and every other tenant's requests keep being served.

    Attributes:
        request_id: admission id the request would have been assigned.
        tenant / object_name / offset / length: the faulty event's fields,
            kept verbatim (the event may be too malformed to build a
            :class:`ServiceRequest` from).
        arrival_hours: arrival time on the simulated clock.
        reason: human-readable rejection reason.
        op: the attempted operation.
        failure_hours: time the failure was decided (equals
            ``arrival_hours`` for admission rejections; later for retry
            exhaustion and write apply failures).
        attempts: wetlab cycles attempted before giving up (0 when the
            request never reached the wetlab).
    """

    request_id: int
    tenant: str
    object_name: str
    offset: int
    length: int | None
    arrival_hours: float
    reason: str
    op: str = "read"
    failure_hours: float | None = None
    attempts: int = 0
