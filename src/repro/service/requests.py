"""Request and completion records for the serving layer.

A :class:`ReadRequest` is one tenant's byte-range read against the object
store; a :class:`CompletedRequest` is its fully-served outcome, carrying
the latency accounting the simulator reports as the Section 7.4-style
p50/p95/p99 numbers.  Payload bytes are summarized as a CRC32 checksum so
simulations over tens of thousands of requests stay memory-bounded while
still letting benchmarks prove that every serving policy decoded
identical bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ServiceError


@dataclass(frozen=True)
class ReadRequest:
    """One tenant read request admitted to the service front-end.

    Attributes:
        request_id: unique, monotonically assigned admission id.
        tenant: identifier of the issuing tenant.
        object_name: requested object in the store catalog.
        offset / length: requested byte range (``length=None`` reads to
            the end of the object).
        arrival_hours: arrival time on the simulated clock.
    """

    request_id: int
    tenant: str
    object_name: str
    offset: int = 0
    length: int | None = None
    arrival_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ServiceError("request offset must be non-negative")
        if self.length is not None and self.length < 0:
            raise ServiceError("request length must be non-negative (or None)")
        if self.arrival_hours < 0:
            raise ServiceError("arrival_hours must be non-negative")


@dataclass(frozen=True)
class CompletedRequest:
    """The served outcome of one request.

    Attributes:
        request: the originating request.
        completion_hours: simulated time the response was delivered.
        byte_count: decoded payload size.
        checksum: CRC32 of the decoded payload.
        served_from_cache: True when every block came from the decoded
            block cache (no wetlab work charged).
        batch_id: the wetlab cycle that served the request, or ``None``
            for pure cache hits.
    """

    request: ReadRequest
    completion_hours: float
    byte_count: int
    checksum: int
    served_from_cache: bool
    batch_id: int | None

    @property
    def latency_hours(self) -> float:
        """Admission-to-delivery latency on the simulated clock."""
        return self.completion_hours - self.request.arrival_hours


@dataclass(frozen=True)
class FailedRequest:
    """A request the service rejected without aborting anyone else.

    Malformed trace events (negative ranges), unknown objects and ranges
    past the object's end fail *individually* at admission: the offending
    request gets a rejection outcome at its arrival time and every other
    tenant's requests keep being served.

    Attributes:
        request_id: admission id the request would have been assigned.
        tenant / object_name / offset / length: the faulty event's fields,
            kept verbatim (the event may be too malformed to build a
            :class:`ReadRequest` from).
        arrival_hours: arrival (and rejection) time on the simulated clock.
        reason: human-readable rejection reason.
    """

    request_id: int
    tenant: str
    object_name: str
    offset: int
    length: int | None
    arrival_hours: float
    reason: str
