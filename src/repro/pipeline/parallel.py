"""Process-parallel decode engine: multi-worker readout decoding.

One wetlab cycle produces independent per-partition read batches (the
concatenated reads of the cycle's :class:`~repro.wetlab.readout.ReadoutUnit`
s, in access order), and decoding a batch — clustering, trace
reconstruction, Reed-Solomon — is pure CPU work on immutable inputs.  The
:class:`DecodeEngine` fans those batches out to a pool of worker
processes:

* **Determinism.**  A task carries everything its decode depends on (the
  pickled partition, the reads, the target blocks, the decoder options),
  tasks never share state, and results are collected in submission order —
  so the decoded bytes, per-block reports and failure strings are
  byte-identical for *any* worker count, including the inline ``workers=1``
  path.  Sequencing randomness is seeded per readout unit upstream, so
  worker scheduling cannot perturb it either.
* **Worker resolution.**  An explicit ``workers`` argument wins, then the
  ``REPRO_DECODE_WORKERS`` environment variable, then the CPU count.
  ``workers=1`` decodes inline with no pool and no pickling — today's
  serial path.
* **Payload transport.**  Tasks ship as ordinary pickles; read batches at
  or above :data:`SHARED_MEMORY_MIN_BYTES` take an optional
  ``multiprocessing.shared_memory`` fast path.  A :class:`_SegmentArena`
  packs every big blob of a decode batch into **one** segment (length-
  prefixed ASCII, ``(name, offset, length)`` descriptors) instead of one
  segment per task, and guarantees the unlink on every exit path,
  including a broken pool.  ``REPRO_DECODE_SHM=0`` disables it.
* **Intra-partition staging.**  With ``REPRO_CLUSTER_SHARDS`` > 1 a
  multi-worker engine decomposes each readout into *stage tasks* —
  cluster shards (:func:`repro.pipeline.clustering.cluster_shard`),
  consensus batches
  (:func:`repro.pipeline.consensus.split_consensus_batches`) and the
  batched syndrome solve — scheduled by a :class:`StageProfile` (EWMA
  seconds-per-unit fed back from workers), so a hot partition's cluster
  shards interleave with other partitions' consensus work instead of
  head-of-line blocking one worker.  ``REPRO_DECODE_STAGED=0`` restores
  one-task-per-partition scheduling; results are byte-identical in every
  mode because the stage pieces are exactly the serial path's phases.
* **Robustness.**  A broken pool (a worker killed mid-cycle) falls back to
  decoding the remaining tasks inline rather than failing the cycle.

Workers report their per-stage wall-clock (cluster / consensus /
syndrome+solve) with each result; the engine folds those into the
caller's active :mod:`~repro.observability.stages` collector, so
benchmarks see one stage breakdown whatever the worker count.

Lane scheduling (wetlab time, :func:`repro.service.simulator.schedule_lanes`)
and worker scheduling (compute time, this module) stay separate axes: the
first decides when simulated chemistry finishes, the second how fast the
host decodes the resulting reads.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from typing import TYPE_CHECKING, Sequence

from repro import envflags
from repro.exceptions import DecodingError
from repro.fastpath import staged_decode_enabled
from repro.observability.stages import collect_stages, record_stages, stage
from repro.observability.tracing import (
    Tracer,
    activate,
    current_tracer,
    maybe_wall_span,
    wall_now,
    worker_track,
)
from repro.pipeline.clustering import (
    DEFAULT_MAX_READ_DISTANCE,
    DEFAULT_MAX_SIGNATURE_ERRORS,
    DEFAULT_MIN_KMER_SIMILARITY,
    ClusterShard,
    ReadCluster,
    build_shard_payloads,
    merge_shard_clusters,
    resolve_cluster_shards,
    route_reads,
)
from repro.pipeline.consensus import split_consensus_batches

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.partition import Partition
    from repro.pipeline.decoder import (
        BlockDecoder,
        DecodeReport,
        ReadoutCandidates,
        ReadoutPlan,
        RoutedReads,
    )

_WORKERS_ENV = "REPRO_DECODE_WORKERS"
_SHM_ENV = "REPRO_DECODE_SHM"

#: Read batches below this many payload bytes always travel as pickles;
#: the shared-memory fast path only pays off once the blob dwarfs the
#: segment setup cost.
SHARED_MEMORY_MIN_BYTES = 1 << 20

#: A syndrome solve predicted to run at least this long goes to a worker;
#: cheaper solves run inline in the parent, where the submission +
#: pickling round-trip would cost more than the solve itself.  An
#: unprofiled solve goes to a worker once so the profile learns its rate.
_REMOTE_SOLVE_MIN_SECONDS = 0.05

#: Stage-collector name per staged-task kind (the solve kind feeds the
#: ``syndrome_solve`` stage the serial decoder reports).
_STAGE_OF_KIND = {
    "cluster": "cluster",
    "consensus": "consensus",
    "solve": "syndrome_solve",
}

#: The only type names allowed to cross the worker-process boundary —
#: :class:`DecodeTask` / :class:`DecodeOutcome` fields and the
#: :func:`_run_task` / :func:`_run_stage_task` signatures may reference
#: nothing outside this set (reprolint rule RL008).  Every non-builtin
#: entry must pickle deterministically: ``Partition`` carries its geometry
#: by value and its ``GaloisField`` resolves through ``GaloisField.cached``
#: (``__reduce__``), so workers share one per-process table source instead
#: of re-deriving exp/log tables per task.
PICKLE_BOUNDARY_TYPES = frozenset(
    {
        "Partition",
        "DecodeReport",
        "Span",
        "Sequence",
        "bool",
        "bytes",
        "dict",
        "float",
        "int",
        "list",
        "str",
        "tuple",
        "None",
    }
)


def resolve_worker_count(workers: int | None = None) -> int:
    """The effective worker count: argument, then env, then CPU count."""
    if workers is None:
        raw = envflags.read(_WORKERS_ENV).strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise DecodingError(
                    f"{_WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise DecodingError("decode worker count must be >= 1")
    return workers


def shared_memory_enabled(shared_memory: bool | None = None) -> bool:
    """Whether large read batches ride shared memory (argument, then env)."""
    if shared_memory is not None:
        return shared_memory
    return envflags.enabled(_SHM_ENV)


@dataclass(frozen=True)
class DecodeTask:
    """One partition readout to decode.

    Attributes:
        partition: the partition whose blocks the reads encode (pickled to
            the worker; it carries primers, layout and ECC geometry).
        reads: raw sequencing reads of the partition's readout units,
            concatenated in access order.
        blocks: target block numbers (``None`` = every written block).
        decoder_options: forwarded to
            :class:`~repro.pipeline.decoder.BlockDecoder`.
        label: display name used on trace spans (conventionally the
            partition's name; diagnostics only, never affects decoding).
    """

    partition: "Partition"
    reads: list[str]
    blocks: list[int] | None = None
    decoder_options: dict = field(default_factory=dict)
    label: str = ""


@dataclass
class DecodeOutcome:
    """The result of one :class:`DecodeTask`.

    Attributes:
        reports: per-block decode reports, as
            :meth:`BlockDecoder.decode_readout` returns them.
        stages: the task's stage timing breakdown (worker wall-clock;
            under staged decoding the sum over the task's stage tasks).
        seconds: total wall-clock of the task's decode (elapsed time from
            first to last stage under staged decoding).
    """

    reports: "dict[int, DecodeReport]"
    stages: dict[str, float]
    seconds: float


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------
def _encode_reads(reads: Sequence[str]) -> bytes | None:
    """One length-prefixed ASCII blob for a read batch.

    Layout: a comma-separated length header, one newline, then the
    concatenated read bodies (sliced back out by length, so reads may
    contain any ASCII byte).  ``None`` when the reads cannot encode.
    """
    try:
        header = ",".join(str(len(read)) for read in reads)
        body = "".join(reads)
        return (header + "\n" + body).encode("ascii")
    except UnicodeEncodeError:
        return None


def _decode_reads(blob: bytes) -> list[str]:
    """Invert :func:`_encode_reads`."""
    text = blob.decode("ascii")
    header, _, body = text.partition("\n")
    if not header:
        return []
    reads: list[str] = []
    position = 0
    for length in (int(part) for part in header.split(",")):
        reads.append(body[position : position + length])
        position += length
    return reads


def _encode_read_groups(groups: Sequence[Sequence[str]]) -> bytes | None:
    """One length-prefixed ASCII blob for clustered read groups.

    Same layout as :func:`_encode_reads` with a two-level header:
    per-group comma-separated read lengths, groups joined by ``;``.
    """
    try:
        header = ";".join(
            ",".join(str(len(read)) for read in group) for group in groups
        )
        body = "".join(read for group in groups for read in group)
        return (header + "\n" + body).encode("ascii")
    except UnicodeEncodeError:
        return None


def _decode_read_groups(blob: bytes) -> list[list[str]]:
    """Invert :func:`_encode_read_groups`."""
    text = blob.decode("ascii")
    header, _, body = text.partition("\n")
    if not header:
        return []
    groups: list[list[str]] = []
    position = 0
    for part in header.split(";"):
        group: list[str] = []
        if part:
            for length in (int(piece) for piece in part.split(",")):
                group.append(body[position : position + length])
                position += length
        groups.append(group)
    return groups


class _SegmentArena:
    """Shared-memory segments owned by one decode batch.

    :meth:`publish` packs many blobs into **one** segment per call and
    hands back ``(name, offset, length)`` descriptors, so a batch of
    tasks (or a wave of stage tasks) shares a single segment instead of
    paying one create/unlink per task.  :meth:`release` unlinks every
    segment the arena created — the parent owns segment lifetime
    unconditionally (workers only attach), so calling it in a ``finally``
    guarantees no leak even when the pool breaks mid-batch.
    """

    def __init__(self) -> None:
        self._segments: list = []

    def publish(
        self, blobs: Sequence[bytes]
    ) -> list[tuple[str, int, int]] | None:
        """Pack ``blobs`` into one fresh segment; ``None`` if unavailable."""
        total = sum(len(blob) for blob in blobs)
        if not blobs or total == 0:
            return None
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(create=True, size=total)
        except OSError:
            return None
        descriptors: list[tuple[str, int, int]] = []
        offset = 0
        for blob in blobs:
            segment.buf[offset : offset + len(blob)] = blob
            descriptors.append((segment.name, offset, len(blob)))
            offset += len(blob)
        self._segments.append(segment)
        segment.close()
        return descriptors

    def release(self) -> None:
        """Unlink every segment this arena created (idempotent)."""
        for segment in self._segments:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()


def _load_blob(descriptor: tuple[str, int, int]) -> bytes:
    """Copy one published blob out of its shared segment (worker side)."""
    from multiprocessing import resource_tracker, shared_memory

    name, offset, length = descriptor
    segment = shared_memory.SharedMemory(name=name)
    try:
        blob = bytes(segment.buf[offset : offset + length])
    finally:
        segment.close()
        # Attaching registered the segment with this process's resource
        # tracker, which would unlink it a second time (and warn) at
        # worker exit; the parent owns the segment's lifetime.
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API is CPython detail
            pass
    return blob


def _load_reads(descriptor: tuple[str, int, int]) -> list[str]:
    """Read a batch back out of a shared-memory segment (worker side)."""
    return _decode_reads(_load_blob(descriptor))


def _load_read_groups(descriptor: tuple[str, int, int]) -> list[list[str]]:
    """Read clustered groups back out of a shared segment (worker side)."""
    return _decode_read_groups(_load_blob(descriptor))


def _unlink_segment(name: str) -> None:
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:  # pragma: no cover - already gone
        return
    segment.close()
    segment.unlink()


def _run_task(
    partition: "Partition",
    blocks: list[int] | None,
    decoder_options: dict,
    reads: list[str] | None,
    shm_descriptor: tuple | None,
    trace: bool | None = None,
    label: str = "",
) -> tuple["dict[int, DecodeReport]", dict[str, float], float, list]:
    """Decode one task (worker entry point; also the inline path's core).

    ``trace`` selects the span-propagation mode: ``None`` leaves the
    ambient tracer alone (the inline path — spans land directly in the
    caller's tracer), ``True`` runs under a fresh local tracer whose
    spans are returned for the parent to adopt (a worker of a traced
    run), and ``False`` explicitly sheds any tracer inherited across a
    ``fork`` (a worker of an untraced run).
    """
    from repro.pipeline.decoder import BlockDecoder

    if reads is None:
        assert shm_descriptor is not None
        reads = _load_reads(shm_descriptor)

    def decode() -> "dict[int, DecodeReport]":
        decoder = BlockDecoder(partition, **decoder_options)
        return decoder.decode_readout(reads, blocks)

    begin = wall_now()
    if trace is None:
        with collect_stages() as stages:
            reports = decode()
        return reports, dict(stages), wall_now() - begin, []
    tracer = Tracer() if trace else None
    with activate(tracer):
        with collect_stages() as stages:
            if tracer is not None:
                with tracer.wall_span(
                    f"decode:{label or 'task'}",
                    track=worker_track(),
                    blocks=len(blocks) if blocks is not None else None,
                    reads=len(reads),
                ):
                    reports = decode()
            else:
                reports = decode()
    spans = tracer.spans if tracer is not None else []
    return reports, dict(stages), wall_now() - begin, spans


def _run_stage_task(
    kind: str,
    payload: tuple,
    options: dict,
    shm_descriptor: tuple | None = None,
    trace: bool | None = None,
    label: str = "",
) -> tuple:
    """Run one decode stage (worker entry point of the staged engine).

    ``kind`` selects the stage: ``"cluster"`` agglomerates one clustering
    shard (payload ``(reads, buckets)``), ``"consensus"`` reconstructs a
    batch of cluster strands (payload ``(groups, length)``), ``"solve"``
    batch-decodes encoding units (payload ``(partition, units)``).  A
    ``None`` first payload element means the blob rides shared memory and
    ``shm_descriptor`` locates it.  Returns ``(result, stages, seconds,
    spans)`` with the same ``trace`` semantics as :func:`_run_task`.
    """
    stage_name = _STAGE_OF_KIND.get(kind)
    if stage_name is None:
        raise DecodingError(f"unknown decode stage kind {kind!r}")

    def execute():
        with stage(stage_name):
            if kind == "cluster":
                from repro.pipeline.clustering import cluster_shard

                reads, buckets = payload
                if reads is None:
                    assert shm_descriptor is not None
                    reads = _load_reads(shm_descriptor)
                return cluster_shard(reads, buckets, **options)
            if kind == "consensus":
                from repro.pipeline.consensus import consensus_batch

                groups, length = payload
                if groups is None:
                    assert shm_descriptor is not None
                    groups = _load_read_groups(shm_descriptor)
                return consensus_batch(
                    groups, length, backend=options.get("backend")
                )
            from repro.pipeline.decoder import try_decode_units_batch

            partition, units = payload
            return try_decode_units_batch(partition, units)

    begin = wall_now()
    if trace is None:
        with collect_stages() as stages:
            result = execute()
        return result, dict(stages), wall_now() - begin, []
    tracer = Tracer() if trace else None
    with activate(tracer):
        with collect_stages() as stages:
            if tracer is not None:
                with tracer.wall_span(
                    f"{kind}:{label or 'stage'}",
                    track=worker_track(),
                    kind=kind,
                ):
                    result = execute()
            else:
                result = execute()
    spans = tracer.spans if tracer is not None else []
    return result, dict(stages), wall_now() - begin, spans


class StageProfile:
    """EWMA seconds-per-unit per decode stage, fed back from workers.

    Units are stage-appropriate sizes (reads for clustering and
    consensus, encoding units for solves); the staged scheduler uses the
    predictions to submit the longest stage tasks first and to keep
    trivially small solves inline.  Predictions only shape *scheduling
    order*, never results, so a cold or wildly wrong profile still
    decodes byte-identically.
    """

    #: Weight of the newest observation (higher = adapts faster).
    alpha = 0.4

    def __init__(self) -> None:
        self._rates: dict[str, float] = {}

    def observe(self, stage_name: str, units: int, seconds: float) -> None:
        """Fold one completed stage task into the profile."""
        if seconds < 0.0:
            return
        rate = seconds / max(1, units)
        previous = self._rates.get(stage_name)
        if previous is None:
            self._rates[stage_name] = rate
        else:
            self._rates[stage_name] = previous + (rate - previous) * self.alpha

    def predict(self, stage_name: str, units: int) -> float | None:
        """Predicted seconds for ``units`` of a stage (None = no data yet)."""
        rate = self._rates.get(stage_name)
        if rate is None:
            return None
        return rate * max(1, units)

    def snapshot(self) -> dict[str, float]:
        """The current per-stage seconds-per-unit rates (diagnostics)."""
        return dict(self._rates)


@dataclass
class _StageSubmission:
    """One stage task queued for a submission wave."""

    task_index: int
    kind: str
    position: int
    units: int
    payload: tuple
    options: dict
    label: str
    blob: bytes | None = None


@dataclass
class _StagedTask:
    """Parent-side state of one :class:`DecodeTask` in the staged engine."""

    index: int
    task: DecodeTask
    decoder: "BlockDecoder"
    begin: float
    plan: "ReadoutPlan | None" = None
    routed: "RoutedReads | None" = None
    payloads: list[ClusterShard] = field(default_factory=list)
    shard_outputs: list = field(default_factory=list)
    shards_remaining: int = 0
    clusters: list[ReadCluster] = field(default_factory=list)
    strand_parts: list = field(default_factory=list)
    batches_remaining: int = 0
    collected: "ReadoutCandidates | None" = None
    stages: dict[str, float] = field(default_factory=dict)

    def fold(self, stages: dict[str, float]) -> None:
        for name, seconds in stages.items():
            self.stages[name] = self.stages.get(name, 0.0) + seconds


class DecodeEngine:
    """A reusable pool of decode workers.

    Args:
        workers: worker processes (``None`` = ``REPRO_DECODE_WORKERS``,
            then CPU count; ``1`` decodes inline).
        shared_memory: whether big read batches ride shared memory
            (``None`` = ``REPRO_DECODE_SHM``, default on).
        cluster_shards: intra-partition clustering shard count (``None``
            = ``REPRO_CLUSTER_SHARDS``, then 1).  With shards > 1 a
            multi-worker engine decomposes readouts into profile-staged
            stage tasks (see :func:`repro.fastpath.staged_decode_enabled`);
            results are byte-identical at any shard count.
    """

    def __init__(
        self,
        workers: int | None = None,
        shared_memory: bool | None = None,
        cluster_shards: int | None = None,
    ) -> None:
        self.workers = resolve_worker_count(workers)
        self.shared_memory = shared_memory_enabled(shared_memory)
        self.cluster_shards = resolve_cluster_shards(cluster_shards)
        self.profile = StageProfile()
        self._executor: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Fork keeps worker startup cheap and inherits warm numpy /
            # Galois tables; platforms without it use their default.
            context = (
                get_context("fork")
                if "fork" in get_all_start_methods()
                else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._executor

    def shutdown(self) -> None:
        """Stop the worker processes (the engine can be reused after)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, tasks: Sequence[DecodeTask]) -> list[DecodeOutcome]:
        """Decode every task, returning outcomes in task order.

        Results are byte-identical for any worker count, shard count and
        staging mode; stage timings are folded into the caller's active
        collector either way.
        """
        if not tasks:
            return []
        with maybe_wall_span(
            "decode_engine",
            tasks=len(tasks),
            workers=self.workers,
            shards=self.cluster_shards,
        ):
            if self.workers == 1:
                return [self._decode_inline(task) for task in tasks]
            if self._staged_eligible(tasks):
                return self._decode_staged(tasks)
            return self._decode_pooled(tasks)

    def _task_options(self, task: DecodeTask) -> dict:
        """Decoder options with the engine's shard count folded in."""
        if self.cluster_shards <= 1 or "cluster_shards" in task.decoder_options:
            return task.decoder_options
        return {**task.decoder_options, "cluster_shards": self.cluster_shards}

    def _staged_eligible(self, tasks: Sequence[DecodeTask]) -> bool:
        """Whether this decode batch can run as staged stage tasks.

        Staging requires shards (otherwise the monolithic task *is* the
        unit of parallelism), the staged flag, and pickleable decoder
        options — a distance-backend *instance* cannot cross the worker
        boundary, so such tasks keep the monolithic path where the
        backend object never leaves the worker-side decoder.
        """
        if self.cluster_shards <= 1 or not staged_decode_enabled():
            return False
        for task in tasks:
            backend = task.decoder_options.get("distance_backend")
            if backend is not None and not isinstance(backend, str):
                return False
        return True

    def _decode_inline(self, task: DecodeTask) -> DecodeOutcome:
        with maybe_wall_span(
            f"decode:{task.label or 'task'}",
            blocks=len(task.blocks) if task.blocks is not None else None,
            reads=len(task.reads),
        ):
            reports, stages, seconds, _ = _run_task(
                task.partition, task.blocks, self._task_options(task),
                task.reads, None,
            )
        record_stages(stages)
        return DecodeOutcome(reports=reports, stages=stages, seconds=seconds)

    def _decode_pooled(self, tasks: Sequence[DecodeTask]) -> list[DecodeOutcome]:
        outcomes: list[DecodeOutcome | None] = [None] * len(tasks)
        futures: list[tuple[int, Future]] = []
        broken = False
        parent_tracer = current_tracer()
        # Workers on a ``fork`` context inherit the ambient tracer; send an
        # explicit flag so untraced runs shed it and traced runs record
        # into a fresh local tracer whose spans ride home with the result.
        trace_flag = parent_tracer is not None
        arena = _SegmentArena()
        try:
            # Pack every big batch into ONE shared segment up front: a
            # single create/unlink per decode() call instead of one per
            # task.
            descriptors: dict[int, tuple[str, int, int]] = {}
            if self.shared_memory:
                blobs: dict[int, bytes] = {}
                for index, task in enumerate(tasks):
                    payload = sum(len(read) for read in task.reads)
                    if payload >= SHARED_MEMORY_MIN_BYTES:
                        blob = _encode_reads(task.reads)
                        if blob is not None:
                            blobs[index] = blob
                if blobs:
                    order = sorted(blobs)
                    published = arena.publish([blobs[i] for i in order])
                    if published is not None:
                        descriptors = dict(zip(order, published))
            pool = self._pool()
            for index, task in enumerate(tasks):
                descriptor = descriptors.get(index)
                try:
                    futures.append(
                        (
                            index,
                            pool.submit(
                                _run_task,
                                task.partition,
                                task.blocks,
                                self._task_options(task),
                                None if descriptor is not None else task.reads,
                                descriptor,
                                trace_flag,
                                task.label,
                            ),
                        )
                    )
                except (BrokenProcessPool, RuntimeError):
                    broken = True
                    break
            # Submission order *is* task order, so collecting in this
            # order keeps outcomes aligned with tasks deterministically.
            for index, future in futures:
                try:
                    reports, stages, seconds, spans = future.result()
                except BrokenProcessPool:
                    broken = True
                    break
                record_stages(stages)
                if parent_tracer is not None and spans:
                    parent_tracer.adopt(spans)
                outcomes[index] = DecodeOutcome(
                    reports=reports, stages=stages, seconds=seconds
                )
            if broken:
                # A dead pool must not fail the cycle: decode whatever is
                # missing inline and start a fresh pool next time.
                self.shutdown()
        finally:
            arena.release()
        return [
            outcome
            if outcome is not None
            else self._decode_inline(tasks[index])
            for index, outcome in enumerate(outcomes)
        ]

    # ------------------------------------------------------------------
    # Staged decoding (intra-partition parallelism)
    # ------------------------------------------------------------------
    def _timed_stage(self, state: _StagedTask, name: str, fn):
        """Run a parent-side stage piece under the stage collector."""
        begin = wall_now()
        with stage(name):
            result = fn()
        state.fold({name: wall_now() - begin})
        return result

    def _submission_cost(self, submission: _StageSubmission) -> float:
        predicted = self.profile.predict(
            _STAGE_OF_KIND[submission.kind], submission.units
        )
        return predicted if predicted is not None else float(submission.units)

    def _decode_staged(self, tasks: Sequence[DecodeTask]) -> list[DecodeOutcome]:
        """Decode tasks as interleaved cluster/consensus/solve stage tasks.

        An event loop over ``concurrent.futures.wait``: each completed
        stage task advances its owning readout's state machine (route →
        shard clustering → merge → consensus batches → collect → solve →
        finish), and every wave of new stage tasks is submitted longest-
        predicted-first, so one partition's hot cluster shards interleave
        with other partitions' consensus and solve work.  Completed
        futures are processed in submission order (RL003: never in set
        order), which — together with per-task positions — keeps every
        merge deterministic.
        """
        from repro.pipeline.decoder import BlockDecoder

        shards = self.cluster_shards
        outcomes: list[DecodeOutcome | None] = [None] * len(tasks)
        parent_tracer = current_tracer()
        trace_flag = parent_tracer is not None
        arena = _SegmentArena()
        broken = False
        sequence = 0
        # future -> (task_index, kind, position, units, submit_seq)
        waiting: dict[Future, tuple[int, str, int, int, int]] = {}
        states: list[_StagedTask] = []

        try:
            pool = self._pool()

            def flush(wave: list[_StageSubmission]) -> None:
                nonlocal broken, sequence
                if not wave or broken:
                    return
                descriptors: dict[int, tuple[str, int, int]] = {}
                if self.shared_memory:
                    with_blob = [
                        i for i, sub in enumerate(wave) if sub.blob is not None
                    ]
                    if with_blob:
                        published = arena.publish(
                            [wave[i].blob for i in with_blob]
                        )
                        if published is not None:
                            descriptors = dict(zip(with_blob, published))
                order = sorted(
                    range(len(wave)),
                    key=lambda i: (
                        -self._submission_cost(wave[i]),
                        wave[i].task_index,
                        wave[i].position,
                    ),
                )
                for i in order:
                    if broken:
                        return
                    sub = wave[i]
                    descriptor = descriptors.get(i)
                    payload = (
                        sub.payload
                        if descriptor is None
                        else (None,) + sub.payload[1:]
                    )
                    try:
                        future = pool.submit(
                            _run_stage_task,
                            sub.kind,
                            payload,
                            sub.options,
                            descriptor,
                            trace_flag,
                            sub.label,
                        )
                    except (BrokenProcessPool, RuntimeError):
                        broken = True
                        return
                    waiting[future] = (
                        sub.task_index, sub.kind, sub.position, sub.units,
                        sequence,
                    )
                    sequence += 1

            wave: list[_StageSubmission] = []
            for index, task in enumerate(tasks):
                state = _StagedTask(
                    index=index,
                    task=task,
                    decoder=BlockDecoder(task.partition, **task.decoder_options),
                    begin=wall_now(),
                )
                states.append(state)
                state.plan = state.decoder.readout_plan(task.reads, task.blocks)
                wave.extend(self._staged_route(state, shards, outcomes))
            flush(wave)

            while waiting and not broken:
                done, _ = wait(list(waiting), return_when=FIRST_COMPLETED)
                wave = []
                for future in sorted(done, key=lambda f: waiting[f][4]):
                    task_index, kind, position, units, _seq = waiting.pop(future)
                    try:
                        result, stages, seconds, spans = future.result()
                    except BrokenProcessPool:
                        broken = True
                        break
                    state = states[task_index]
                    state.fold(stages)
                    record_stages(stages)
                    if parent_tracer is not None and spans:
                        parent_tracer.adopt(spans)
                    self.profile.observe(_STAGE_OF_KIND[kind], units, seconds)
                    wave.extend(
                        self._staged_advance(
                            state, kind, position, result, outcomes
                        )
                    )
                flush(wave)
            if broken:
                self.shutdown()
        finally:
            arena.release()
        # Tasks interrupted by a broken pool decode inline from scratch —
        # partial stage results are discarded so the fallback is exactly
        # the serial path.
        return [
            outcome
            if outcome is not None
            else self._decode_inline(tasks[index])
            for index, outcome in enumerate(outcomes)
        ]

    def _staged_route(
        self,
        state: _StagedTask,
        shards: int,
        outcomes: list[DecodeOutcome | None],
    ) -> list[_StageSubmission]:
        """Route one readout's reads (sequential phase 1) and shard it."""
        decoder = state.decoder
        signature_start, signature_length = decoder._signature_window()

        def route() -> None:
            state.routed = route_reads(
                state.plan.on_prefix,
                signature_start=signature_start,
                signature_length=signature_length,
                max_signature_errors=DEFAULT_MAX_SIGNATURE_ERRORS,
                distance_backend=decoder.distance_backend,
            )
            state.payloads = build_shard_payloads(
                state.plan.on_prefix, state.routed.bucket_reads, shards
            )

        self._timed_stage(state, "cluster", route)
        if not state.payloads:
            state.shard_outputs = []
            return self._staged_after_cluster(state, outcomes)
        state.shard_outputs = [None] * len(state.payloads)
        state.shards_remaining = len(state.payloads)
        options = {
            "max_read_distance": decoder.max_read_distance,
            "min_kmer_similarity": DEFAULT_MIN_KMER_SIMILARITY,
            "distance_backend": decoder.distance_backend,
        }
        submissions: list[_StageSubmission] = []
        label = state.task.label or "task"
        for position, payload in enumerate(state.payloads):
            blob = None
            if (
                self.shared_memory
                and sum(len(read) for read in payload.reads)
                >= SHARED_MEMORY_MIN_BYTES
            ):
                blob = _encode_reads(payload.reads)
            submissions.append(
                _StageSubmission(
                    task_index=state.index,
                    kind="cluster",
                    position=position,
                    units=len(payload.reads),
                    payload=(payload.reads, payload.buckets),
                    options=options,
                    label=f"{label}#{payload.shard}/{shards}",
                    blob=blob,
                )
            )
        return submissions

    def _staged_advance(
        self,
        state: _StagedTask,
        kind: str,
        position: int,
        result,
        outcomes: list[DecodeOutcome | None],
    ) -> list[_StageSubmission]:
        """Fold one completed stage task; return the next submissions."""
        if kind == "cluster":
            state.shard_outputs[position] = result
            state.shards_remaining -= 1
            if state.shards_remaining:
                return []
            return self._staged_after_cluster(state, outcomes)
        if kind == "consensus":
            state.strand_parts[position] = result
            state.batches_remaining -= 1
            if state.batches_remaining:
                return []
            strands = [
                strand for part in state.strand_parts for strand in part
            ]
            return self._staged_after_consensus(state, strands, outcomes)
        self._staged_finish(state, result, outcomes)
        return []

    def _staged_after_cluster(
        self, state: _StagedTask, outcomes: list[DecodeOutcome | None]
    ) -> list[_StageSubmission]:
        """Merge shard outputs; fan the clusters out as consensus batches."""
        def merge() -> None:
            state.clusters = merge_shard_clusters(
                state.routed, state.shard_outputs
            )

        self._timed_stage(state, "cluster", merge)
        groups = [cluster.reads for cluster in state.clusters]
        if not groups:
            return self._staged_after_consensus(state, [], outcomes)
        batches = split_consensus_batches(groups, self.cluster_shards)
        state.strand_parts = [None] * len(batches)
        state.batches_remaining = len(batches)
        length = state.decoder._layout.strand_length
        label = state.task.label or "task"
        submissions: list[_StageSubmission] = []
        for position, chunk in enumerate(batches):
            blob = None
            if (
                self.shared_memory
                and sum(len(read) for group in chunk for read in group)
                >= SHARED_MEMORY_MIN_BYTES
            ):
                blob = _encode_read_groups(chunk)
            submissions.append(
                _StageSubmission(
                    task_index=state.index,
                    kind="consensus",
                    position=position,
                    units=sum(len(group) for group in chunk),
                    payload=(chunk, length),
                    options={"backend": None},
                    label=f"{label}[{position + 1}/{len(batches)}]",
                    blob=blob,
                )
            )
        return submissions

    def _staged_after_consensus(
        self,
        state: _StagedTask,
        strands: list[str],
        outcomes: list[DecodeOutcome | None],
    ) -> list[_StageSubmission]:
        """Collect candidates; solve remotely only when predictably big."""
        state.collected = state.decoder.collect_readout(
            state.plan, state.clusters, strands
        )
        units = state.collected.batch_units
        predicted = self.profile.predict("syndrome_solve", len(units))
        if units and (
            predicted is None or predicted >= _REMOTE_SOLVE_MIN_SECONDS
        ):
            return [
                _StageSubmission(
                    task_index=state.index,
                    kind="solve",
                    position=0,
                    units=len(units),
                    payload=(state.task.partition, units),
                    options={},
                    label=state.task.label or "task",
                )
            ]

        def solve() -> dict:
            from repro.pipeline.decoder import try_decode_units_batch

            return try_decode_units_batch(state.task.partition, units)

        begin = wall_now()
        decoded_units = self._timed_stage(state, "syndrome_solve", solve)
        self.profile.observe(
            "syndrome_solve", max(1, len(units)), wall_now() - begin
        )
        self._staged_finish(state, decoded_units, outcomes)
        return []

    def _staged_finish(
        self,
        state: _StagedTask,
        decoded_units: dict,
        outcomes: list[DecodeOutcome | None],
    ) -> None:
        """Assemble the task's reports (always in the parent)."""
        def finish() -> "dict[int, DecodeReport]":
            return state.decoder.finish_readout(
                state.plan, state.collected, decoded_units
            )

        reports = self._timed_stage(state, "syndrome_solve", finish)
        outcomes[state.index] = DecodeOutcome(
            reports=reports,
            stages=dict(state.stages),
            seconds=wall_now() - state.begin,
        )

    # ------------------------------------------------------------------
    # Sharded clustering as a standalone service (benchmarks, callers
    # that want clusters rather than decoded blocks)
    # ------------------------------------------------------------------
    def cluster_sharded(
        self,
        reads: list[str],
        *,
        signature_start: int,
        signature_length: int,
        max_signature_errors: int = DEFAULT_MAX_SIGNATURE_ERRORS,
        max_read_distance: int = DEFAULT_MAX_READ_DISTANCE,
        min_kmer_similarity: float = DEFAULT_MIN_KMER_SIMILARITY,
        distance_backend: str | None = None,
        shards: int | None = None,
    ) -> tuple[list[ReadCluster], list[dict]]:
        """Cluster one read batch with shard agglomeration on the pool.

        Byte-identical to
        :func:`repro.pipeline.clustering.cluster_reads` at any shard and
        worker count (it drives the same route/shard/merge primitives).
        Returns ``(clusters, shard_stats)`` where ``shard_stats`` holds
        one ``{shard, buckets, reads, seconds}`` row per non-empty shard,
        in shard order — the per-shard cluster-stage breakdown the
        decoding benchmark publishes.

        ``distance_backend`` must be a backend *name* (or ``None``):
        backend instances cannot cross the worker pickle boundary.
        """
        if distance_backend is not None and not isinstance(distance_backend, str):
            raise DecodingError(
                "cluster_sharded needs a distance-backend name (or None); "
                "backend instances cannot cross the worker boundary"
            )
        shard_count = (
            self.cluster_shards if shards is None else resolve_cluster_shards(shards)
        )
        parent_tracer = current_tracer()
        trace_flag = parent_tracer is not None
        with maybe_wall_span(
            "cluster_sharded", shards=shard_count, reads=len(reads)
        ):
            routed = route_reads(
                reads,
                signature_start=signature_start,
                signature_length=signature_length,
                max_signature_errors=max_signature_errors,
                distance_backend=distance_backend,
            )
            payloads = build_shard_payloads(
                reads, routed.bucket_reads, shard_count
            )
            options = {
                "max_read_distance": max_read_distance,
                "min_kmer_similarity": min_kmer_similarity,
                "distance_backend": distance_backend,
            }
            outputs: list = [None] * len(payloads)
            stats: list[dict | None] = [None] * len(payloads)
            arena = _SegmentArena()
            broken = False
            try:
                futures: list[tuple[int, Future]] = []
                if self.workers > 1 and len(payloads) > 1:
                    descriptors: dict[int, tuple[str, int, int]] = {}
                    if self.shared_memory:
                        blobs: dict[int, bytes] = {}
                        for position, payload in enumerate(payloads):
                            size = sum(len(read) for read in payload.reads)
                            if size >= SHARED_MEMORY_MIN_BYTES:
                                blob = _encode_reads(payload.reads)
                                if blob is not None:
                                    blobs[position] = blob
                        if blobs:
                            order = sorted(blobs)
                            published = arena.publish(
                                [blobs[i] for i in order]
                            )
                            if published is not None:
                                descriptors = dict(zip(order, published))
                    pool = self._pool()
                    for position, payload in enumerate(payloads):
                        descriptor = descriptors.get(position)
                        try:
                            futures.append(
                                (
                                    position,
                                    pool.submit(
                                        _run_stage_task,
                                        "cluster",
                                        (
                                            None
                                            if descriptor is not None
                                            else payload.reads,
                                            payload.buckets,
                                        ),
                                        options,
                                        descriptor,
                                        trace_flag,
                                        f"shard#{payload.shard}/{shard_count}",
                                    ),
                                )
                            )
                        except (BrokenProcessPool, RuntimeError):
                            broken = True
                            break
                    for position, future in futures:
                        try:
                            result, stages, seconds, spans = future.result()
                        except BrokenProcessPool:
                            broken = True
                            break
                        record_stages(stages)
                        if parent_tracer is not None and spans:
                            parent_tracer.adopt(spans)
                        self.profile.observe(
                            "cluster", len(payloads[position].reads), seconds
                        )
                        outputs[position] = result
                        stats[position] = {
                            "shard": payloads[position].shard,
                            "buckets": len(payloads[position].buckets),
                            "reads": len(payloads[position].reads),
                            "seconds": seconds,
                        }
                    if broken:
                        self.shutdown()
                # Inline whatever never ran (workers == 1, a single
                # payload, or a pool that broke mid-batch).
                for position, payload in enumerate(payloads):
                    if outputs[position] is not None:
                        continue
                    result, stages, seconds, _ = _run_stage_task(
                        "cluster", (payload.reads, payload.buckets), options
                    )
                    record_stages(stages)
                    self.profile.observe("cluster", len(payload.reads), seconds)
                    outputs[position] = result
                    stats[position] = {
                        "shard": payload.shard,
                        "buckets": len(payload.buckets),
                        "reads": len(payload.reads),
                        "seconds": seconds,
                    }
            finally:
                arena.release()
            clusters = merge_shard_clusters(routed, outputs)
            return clusters, [stat for stat in stats if stat is not None]


# ----------------------------------------------------------------------
# Shared engines
# ----------------------------------------------------------------------
_shared_engines: dict[tuple[int, bool, int], DecodeEngine] = {}


def shared_engine(
    workers: int | None = None,
    shared_memory: bool | None = None,
    cluster_shards: int | None = None,
) -> DecodeEngine:
    """A process-wide engine per resolved configuration.

    Worker pools are expensive to start, so every decode entry point
    (:meth:`ObjectStore.try_decode_blocks`, the serving pipeline) shares
    one engine per ``(workers, shared_memory, cluster_shards)``
    resolution; the pools are torn down at interpreter exit.  Sharing
    also keeps the engine's :class:`StageProfile` warm across cycles.
    """
    key = (
        resolve_worker_count(workers),
        shared_memory_enabled(shared_memory),
        resolve_cluster_shards(cluster_shards),
    )
    engine = _shared_engines.get(key)
    if engine is None:
        engine = DecodeEngine(
            workers=key[0], shared_memory=key[1], cluster_shards=key[2]
        )
        _shared_engines[key] = engine
    return engine


@atexit.register
def _shutdown_shared_engines() -> None:  # pragma: no cover - exit hook
    for engine in _shared_engines.values():
        engine.shutdown()


__all__ = [
    "DecodeEngine",
    "DecodeOutcome",
    "DecodeTask",
    "SHARED_MEMORY_MIN_BYTES",
    "StageProfile",
    "resolve_worker_count",
    "shared_engine",
    "shared_memory_enabled",
]
