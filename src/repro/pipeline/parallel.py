"""Process-parallel decode engine: multi-worker readout decoding.

One wetlab cycle produces independent per-partition read batches (the
concatenated reads of the cycle's :class:`~repro.wetlab.readout.ReadoutUnit`
s, in access order), and decoding a batch — clustering, trace
reconstruction, Reed-Solomon — is pure CPU work on immutable inputs.  The
:class:`DecodeEngine` fans those batches out to a pool of worker
processes, one task per partition readout:

* **Determinism.**  A task carries everything its decode depends on (the
  pickled partition, the reads, the target blocks, the decoder options),
  tasks never share state, and results are collected in submission order —
  so the decoded bytes, per-block reports and failure strings are
  byte-identical for *any* worker count, including the inline ``workers=1``
  path.  Sequencing randomness is seeded per readout unit upstream, so
  worker scheduling cannot perturb it either.
* **Worker resolution.**  An explicit ``workers`` argument wins, then the
  ``REPRO_DECODE_WORKERS`` environment variable, then the CPU count.
  ``workers=1`` decodes inline with no pool and no pickling — today's
  serial path.
* **Payload transport.**  Tasks ship as ordinary pickles; read batches at
  or above :data:`SHARED_MEMORY_MIN_BYTES` take an optional
  ``multiprocessing.shared_memory`` fast path (one ASCII blob per batch)
  so large readouts are not copied through the executor's pipe.
  ``REPRO_DECODE_SHM=0`` disables it.
* **Robustness.**  A broken pool (a worker killed mid-cycle) falls back to
  decoding the remaining tasks inline rather than failing the cycle.

Workers report their per-stage wall-clock (cluster / consensus /
syndrome+solve) with each result; the engine folds those into the
caller's active :mod:`~repro.observability.stages` collector, so
benchmarks see one stage breakdown whatever the worker count.

Lane scheduling (wetlab time, :func:`repro.service.simulator.schedule_lanes`)
and worker scheduling (compute time, this module) stay separate axes: the
first decides when simulated chemistry finishes, the second how fast the
host decodes the resulting reads.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from typing import TYPE_CHECKING, Sequence

from repro import envflags
from repro.exceptions import DecodingError
from repro.observability.stages import collect_stages, record_stages
from repro.observability.tracing import (
    Tracer,
    activate,
    current_tracer,
    maybe_wall_span,
    wall_now,
    worker_track,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.partition import Partition
    from repro.pipeline.decoder import DecodeReport

_WORKERS_ENV = "REPRO_DECODE_WORKERS"
_SHM_ENV = "REPRO_DECODE_SHM"

#: Read batches below this many payload bytes always travel as pickles;
#: the shared-memory fast path only pays off once the blob dwarfs the
#: segment setup cost.
SHARED_MEMORY_MIN_BYTES = 1 << 20

#: The only type names allowed to cross the worker-process boundary —
#: :class:`DecodeTask` / :class:`DecodeOutcome` fields and the
#: :func:`_run_task` signature may reference nothing outside this set
#: (reprolint rule RL008).  Every non-builtin entry must pickle
#: deterministically: ``Partition`` carries its geometry by value and its
#: ``GaloisField`` resolves through ``GaloisField.cached`` (``__reduce__``),
#: so workers share one per-process table source instead of re-deriving
#: exp/log tables per task.
PICKLE_BOUNDARY_TYPES = frozenset(
    {
        "Partition",
        "DecodeReport",
        "Span",
        "Sequence",
        "bool",
        "bytes",
        "dict",
        "float",
        "int",
        "list",
        "str",
        "tuple",
        "None",
    }
)


def resolve_worker_count(workers: int | None = None) -> int:
    """The effective worker count: argument, then env, then CPU count."""
    if workers is None:
        raw = envflags.read(_WORKERS_ENV).strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise DecodingError(
                    f"{_WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise DecodingError("decode worker count must be >= 1")
    return workers


def shared_memory_enabled(shared_memory: bool | None = None) -> bool:
    """Whether large read batches ride shared memory (argument, then env)."""
    if shared_memory is not None:
        return shared_memory
    return envflags.enabled(_SHM_ENV)


@dataclass(frozen=True)
class DecodeTask:
    """One partition readout to decode.

    Attributes:
        partition: the partition whose blocks the reads encode (pickled to
            the worker; it carries primers, layout and ECC geometry).
        reads: raw sequencing reads of the partition's readout units,
            concatenated in access order.
        blocks: target block numbers (``None`` = every written block).
        decoder_options: forwarded to
            :class:`~repro.pipeline.decoder.BlockDecoder`.
        label: display name used on trace spans (conventionally the
            partition's name; diagnostics only, never affects decoding).
    """

    partition: "Partition"
    reads: list[str]
    blocks: list[int] | None = None
    decoder_options: dict = field(default_factory=dict)
    label: str = ""


@dataclass
class DecodeOutcome:
    """The result of one :class:`DecodeTask`.

    Attributes:
        reports: per-block decode reports, as
            :meth:`BlockDecoder.decode_readout` returns them.
        stages: the task's stage timing breakdown (worker wall-clock).
        seconds: total wall-clock of the task's decode.
    """

    reports: "dict[int, DecodeReport]"
    stages: dict[str, float]
    seconds: float


def _pack_reads(reads: list[str]) -> tuple[str, int] | None:
    """Publish a read batch into a shared-memory segment.

    Returns ``(segment_name, payload_length)``, or ``None`` when the batch
    cannot ride shared memory (non-ASCII reads, or the platform refuses a
    segment).  Reads are newline-joined, which is safe because sequencing
    reads are alphabetic strings.
    """
    try:
        blob = "\n".join(reads).encode("ascii")
    except UnicodeEncodeError:
        return None
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(create=True, size=max(1, len(blob)))
    except OSError:
        return None
    segment.buf[: len(blob)] = blob
    name = segment.name
    segment.close()
    return (name, len(blob))


def _load_reads(descriptor: tuple[str, int]) -> list[str]:
    """Read a batch back out of a shared-memory segment (worker side)."""
    from multiprocessing import resource_tracker, shared_memory

    name, length = descriptor
    segment = shared_memory.SharedMemory(name=name)
    try:
        blob = bytes(segment.buf[:length])
    finally:
        segment.close()
        # Attaching registered the segment with this process's resource
        # tracker, which would unlink it a second time (and warn) at
        # worker exit; the parent owns the segment's lifetime.
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API is CPython detail
            pass
    text = blob.decode("ascii")
    return text.split("\n") if text else [""]


def _unlink_segment(name: str) -> None:
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:  # pragma: no cover - already gone
        return
    segment.close()
    segment.unlink()


def _run_task(
    partition: "Partition",
    blocks: list[int] | None,
    decoder_options: dict,
    reads: list[str] | None,
    shm_descriptor: tuple[str, int] | None,
    trace: bool | None = None,
    label: str = "",
) -> tuple["dict[int, DecodeReport]", dict[str, float], float, list]:
    """Decode one task (worker entry point; also the inline path's core).

    ``trace`` selects the span-propagation mode: ``None`` leaves the
    ambient tracer alone (the inline path — spans land directly in the
    caller's tracer), ``True`` runs under a fresh local tracer whose
    spans are returned for the parent to adopt (a worker of a traced
    run), and ``False`` explicitly sheds any tracer inherited across a
    ``fork`` (a worker of an untraced run).
    """
    from repro.pipeline.decoder import BlockDecoder

    if reads is None:
        assert shm_descriptor is not None
        reads = _load_reads(shm_descriptor)

    def decode() -> "dict[int, DecodeReport]":
        decoder = BlockDecoder(partition, **decoder_options)
        return decoder.decode_readout(reads, blocks)

    begin = wall_now()
    if trace is None:
        with collect_stages() as stages:
            reports = decode()
        return reports, dict(stages), wall_now() - begin, []
    tracer = Tracer() if trace else None
    with activate(tracer):
        with collect_stages() as stages:
            if tracer is not None:
                with tracer.wall_span(
                    f"decode:{label or 'task'}",
                    track=worker_track(),
                    blocks=len(blocks) if blocks is not None else None,
                    reads=len(reads),
                ):
                    reports = decode()
            else:
                reports = decode()
    spans = tracer.spans if tracer is not None else []
    return reports, dict(stages), wall_now() - begin, spans


class DecodeEngine:
    """A reusable pool of decode workers.

    Args:
        workers: worker processes (``None`` = ``REPRO_DECODE_WORKERS``,
            then CPU count; ``1`` decodes inline).
        shared_memory: whether big read batches ride shared memory
            (``None`` = ``REPRO_DECODE_SHM``, default on).
    """

    def __init__(
        self,
        workers: int | None = None,
        shared_memory: bool | None = None,
    ) -> None:
        self.workers = resolve_worker_count(workers)
        self.shared_memory = shared_memory_enabled(shared_memory)
        self._executor: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Fork keeps worker startup cheap and inherits warm numpy /
            # Galois tables; platforms without it use their default.
            context = (
                get_context("fork")
                if "fork" in get_all_start_methods()
                else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._executor

    def shutdown(self) -> None:
        """Stop the worker processes (the engine can be reused after)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, tasks: Sequence[DecodeTask]) -> list[DecodeOutcome]:
        """Decode every task, returning outcomes in task order.

        Results are byte-identical for any worker count; stage timings are
        folded into the caller's active collector either way.
        """
        if not tasks:
            return []
        with maybe_wall_span(
            "decode_engine", tasks=len(tasks), workers=self.workers
        ):
            if self.workers == 1:
                return [self._decode_inline(task) for task in tasks]
            return self._decode_pooled(tasks)

    def _decode_inline(self, task: DecodeTask) -> DecodeOutcome:
        with maybe_wall_span(
            f"decode:{task.label or 'task'}",
            blocks=len(task.blocks) if task.blocks is not None else None,
            reads=len(task.reads),
        ):
            reports, stages, seconds, _ = _run_task(
                task.partition, task.blocks, task.decoder_options, task.reads, None
            )
        record_stages(stages)
        return DecodeOutcome(reports=reports, stages=stages, seconds=seconds)

    def _decode_pooled(self, tasks: Sequence[DecodeTask]) -> list[DecodeOutcome]:
        segments: list[str] = []
        outcomes: list[DecodeOutcome | None] = [None] * len(tasks)
        futures: list[tuple[int, Future]] = []
        broken = False
        parent_tracer = current_tracer()
        # Workers on a ``fork`` context inherit the ambient tracer; send an
        # explicit flag so untraced runs shed it and traced runs record
        # into a fresh local tracer whose spans ride home with the result.
        trace_flag = parent_tracer is not None
        try:
            pool = self._pool()
            for index, task in enumerate(tasks):
                descriptor = None
                if self.shared_memory:
                    payload = sum(len(read) for read in task.reads)
                    if payload >= SHARED_MEMORY_MIN_BYTES:
                        descriptor = _pack_reads(task.reads)
                        if descriptor is not None:
                            segments.append(descriptor[0])
                try:
                    futures.append(
                        (
                            index,
                            pool.submit(
                                _run_task,
                                task.partition,
                                task.blocks,
                                task.decoder_options,
                                None if descriptor is not None else task.reads,
                                descriptor,
                                trace_flag,
                                task.label,
                            ),
                        )
                    )
                except (BrokenProcessPool, RuntimeError):
                    broken = True
                    break
            # Submission order *is* task order, so collecting in this
            # order keeps outcomes aligned with tasks deterministically.
            for index, future in futures:
                try:
                    reports, stages, seconds, spans = future.result()
                except BrokenProcessPool:
                    broken = True
                    break
                record_stages(stages)
                if parent_tracer is not None and spans:
                    parent_tracer.adopt(spans)
                outcomes[index] = DecodeOutcome(
                    reports=reports, stages=stages, seconds=seconds
                )
            if broken:
                # A dead pool must not fail the cycle: decode whatever is
                # missing inline and start a fresh pool next time.
                self.shutdown()
        finally:
            for name in segments:
                _unlink_segment(name)
        return [
            outcome
            if outcome is not None
            else self._decode_inline(tasks[index])
            for index, outcome in enumerate(outcomes)
        ]


# ----------------------------------------------------------------------
# Shared engines
# ----------------------------------------------------------------------
_shared_engines: dict[tuple[int, bool], DecodeEngine] = {}


def shared_engine(
    workers: int | None = None, shared_memory: bool | None = None
) -> DecodeEngine:
    """A process-wide engine per ``(workers, shared_memory)`` resolution.

    Worker pools are expensive to start, so every decode entry point
    (:meth:`ObjectStore.try_decode_blocks`, the serving pipeline) shares
    one engine per configuration; the pools are torn down at interpreter
    exit.
    """
    key = (resolve_worker_count(workers), shared_memory_enabled(shared_memory))
    engine = _shared_engines.get(key)
    if engine is None:
        engine = DecodeEngine(workers=key[0], shared_memory=key[1])
        _shared_engines[key] = engine
    return engine


@atexit.register
def _shutdown_shared_engines() -> None:  # pragma: no cover - exit hook
    for engine in _shared_engines.values():
        engine.shutdown()


__all__ = [
    "DecodeEngine",
    "DecodeOutcome",
    "DecodeTask",
    "SHARED_MEMORY_MIN_BYTES",
    "resolve_worker_count",
    "shared_engine",
    "shared_memory_enabled",
]
