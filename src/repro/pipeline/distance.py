"""Edit-distance backends for the clustering hot path.

Clustering spends almost all of its time answering one question: *which is
the first cluster representative within edit distance* ``d`` *of this
read?*  This module provides that primitive behind a small backend
interface, mirroring :mod:`repro.codec.backend`:

* :class:`PythonDistanceBackend` — banded early-exit Levenshtein
  (:func:`repro.sequence.levenshtein_distance`), one comparison at a time,
  stopping at the first match.  No dependencies; the fallback everywhere.
* :class:`NumpyDistanceBackend` — a vectorized banded Levenshtein that
  runs *every* (query, candidate) pair of a batch through one dynamic
  program: rows of all pairs advance together as ``(pairs, 2k+1)`` array
  operations, so thousands of comparisons amortize the per-row cost.

Both backends are exact within the bound, so they produce *identical*
clusters — ``tests/test_distance_backends.py`` asserts it.  Resolution
order matches the codec engine: explicit name, then the
``REPRO_DISTANCE_BACKEND`` environment variable, then autodetection.
"""

from __future__ import annotations

from repro import envflags

from repro.exceptions import ClusteringError
from repro.fastpath import fused_kernels_enabled
from repro.sequence import levenshtein_distance

_ENV_VARIABLE = "REPRO_DISTANCE_BACKEND"

_instances: dict[str, "DistanceBackend"] = {}


class DistanceBackend:
    """Interface of a clustering distance backend."""

    name = "base"

    def first_within(
        self, query: str, candidates: list[str], max_distance: int
    ) -> int | None:
        """Index of the first candidate within ``max_distance`` of ``query``."""
        raise NotImplementedError

    def first_within_batch(
        self,
        queries: list[str],
        candidate_lists: list[list[str]],
        max_distance: int,
    ) -> list[int | None]:
        """:meth:`first_within` for many (query, candidates) items at once.

        The batch form is what lets a vectorized backend amortize work; the
        default simply loops.
        """
        return [
            self.first_within(query, candidates, max_distance)
            for query, candidates in zip(queries, candidate_lists)
        ]

    def nearest(
        self, query: str, candidates: list[str], max_distance: int
    ) -> tuple[int, int] | None:
        """``(index, distance)`` of the closest candidate within the bound.

        The first index wins ties — the contract corrupted-signature
        routing relies on (earliest-created bucket among equally-near
        ones).  Returns ``None`` when no candidate is within the bound.
        """
        raise NotImplementedError


def _bounded_distance(query: str, candidate: str, allowed: int) -> int:
    """Bounded edit distance with a Hamming fast path for equal lengths.

    For equal-length strings the edit distance is 0 or 1 exactly when the
    Hamming distance is (an edit script without substitutions changes the
    length or costs >= 2), and ``edit <= hamming`` always — so a Hamming
    distance of 2 pins the edit distance to exactly 2.  Signatures are
    fixed-width slices, which makes this the common case and skips the DP
    entirely for it.
    """
    if len(query) == len(candidate):
        mismatches = 0
        for a, b in zip(query, candidate):
            if a != b:
                mismatches += 1
                if mismatches > 2:
                    break
        if mismatches <= 2:
            return mismatches
        if allowed < 2:
            return allowed + 1
    return levenshtein_distance(query, candidate, upper_bound=allowed)


def _nearest_scalar(
    query: str, candidates: list[str], max_distance: int
) -> tuple[int, int] | None:
    """Shared scalar nearest-candidate search with bound tightening.

    Each comparison only needs to beat the best distance so far, so the
    banded Levenshtein runs with an ever-shrinking bound; the first
    strictly-better candidate wins, which preserves first-index-wins-ties.
    """
    best: tuple[int, int] | None = None
    allowed = max_distance
    for index, candidate in enumerate(candidates):
        distance = _bounded_distance(query, candidate, allowed)
        if distance <= allowed:
            best = (index, distance)
            if distance == 0:
                break
            allowed = distance - 1
    return best


class PythonDistanceBackend(DistanceBackend):
    """Sequential banded Levenshtein with per-query early exit."""

    name = "python"

    def first_within(
        self, query: str, candidates: list[str], max_distance: int
    ) -> int | None:
        for index, candidate in enumerate(candidates):
            distance = levenshtein_distance(
                query, candidate, upper_bound=max_distance
            )
            if distance <= max_distance:
                return index
        return None

    def nearest(
        self, query: str, candidates: list[str], max_distance: int
    ) -> tuple[int, int] | None:
        return _nearest_scalar(query, candidates, max_distance)


class NumpyDistanceBackend(DistanceBackend):
    """Vectorized banded Levenshtein over whole comparison batches."""

    name = "numpy"

    _BIG = 1 << 20  # sentinel for out-of-band cells; survives +/- band width

    #: Below this many candidates the per-call array setup costs more than
    #: the scalar banded loop saves; both paths are exact, so the cutover
    #: is purely a performance knob.
    _MIN_BATCH = 8

    def __init__(self) -> None:
        import numpy

        self._np = numpy

    def first_within(
        self, query: str, candidates: list[str], max_distance: int
    ) -> int | None:
        if len(candidates) < self._MIN_BATCH:
            for index, candidate in enumerate(candidates):
                distance = levenshtein_distance(
                    query, candidate, upper_bound=max_distance
                )
                if distance <= max_distance:
                    return index
            return None
        return self.first_within_batch([query], [candidates], max_distance)[0]

    def nearest(
        self, query: str, candidates: list[str], max_distance: int
    ) -> tuple[int, int] | None:
        # Signatures are fixed-width slices, so the candidate set is one
        # uint8 matrix and the Hamming distances of every candidate come
        # out of a single array pass.  For equal-length strings the edit
        # distance is pinned to the Hamming distance below 2 (see
        # _bounded_distance), so only Hamming >= 3 candidates — shifted
        # windows, i.e. indels — still need the banded DP, and those all
        # go through one batch_distances call.  ``_nearest_scalar`` is the
        # earliest-argmin of the exact bounded distances, which is exactly
        # what this computes.
        count = len(candidates)
        if count < self._MIN_BATCH or not fused_kernels_enabled():
            return _nearest_scalar(query, candidates, max_distance)
        np = self._np
        width = len(query)
        if width == 0 or any(len(candidate) != width for candidate in candidates):
            return _nearest_scalar(query, candidates, max_distance)
        try:
            blob = "".join(candidates).encode("ascii")
            encoded_query = query.encode("ascii")
        except UnicodeEncodeError:
            return _nearest_scalar(query, candidates, max_distance)
        if len(blob) != count * width:
            return _nearest_scalar(query, candidates, max_distance)
        matrix = np.frombuffer(blob, dtype=np.uint8).reshape(count, width)
        hamming = (matrix != np.frombuffer(encoded_query, dtype=np.uint8)).sum(axis=1)
        nearest_index = int(hamming.argmin())  # argmin returns the first minimum
        lowest = int(hamming[nearest_index])
        if lowest <= 1:
            # No other candidate can be closer: equal lengths mean edit
            # distance 0 or 1 exactly when Hamming is, and any Hamming >= 2
            # candidate sits at edit distance >= 2.
            if lowest > max_distance:
                return None
            return (nearest_index, lowest)
        if max_distance < 2:
            return None
        # Remaining case: every candidate is at edit distance >= 2.  Run
        # the scalar tightening scan with the Hamming column precomputed;
        # only Hamming >= 3 candidates seen while the bound is still >= 2
        # pay a banded DP, exactly as _bounded_distance would.
        hamming_list = hamming.tolist()
        best: tuple[int, int] | None = None
        allowed = max_distance
        for index, mismatches in enumerate(hamming_list):
            if mismatches <= 2:
                distance = mismatches
            elif allowed < 2:
                continue
            else:
                distance = levenshtein_distance(
                    query, candidates[index], upper_bound=allowed
                )
            if distance <= allowed:
                best = (index, distance)
                allowed = distance - 1
        return best

    def first_within_batch(
        self,
        queries: list[str],
        candidate_lists: list[list[str]],
        max_distance: int,
    ) -> list[int | None]:
        pairs: list[tuple[str, str]] = []
        spans: list[tuple[int, int]] = []
        for query, candidates in zip(queries, candidate_lists):
            start = len(pairs)
            pairs.extend((query, candidate) for candidate in candidates)
            spans.append((start, len(pairs)))
        distances = self.batch_distances(pairs, max_distance)
        results: list[int | None] = []
        for start, end in spans:
            match: int | None = None
            for offset in range(start, end):
                if distances[offset] <= max_distance:
                    match = offset - start
                    break
            results.append(match)
        return results

    def batch_distances(
        self, pairs: list[tuple[str, str]], bound: int
    ) -> list[int]:
        """Bounded edit distance of every pair, in one banded array DP.

        Returns the exact distance when it is ``<= bound`` and any value
        ``> bound`` otherwise (callers only compare against the bound).
        """
        np = self._np
        if bound < 0:
            raise ClusteringError("bound must be non-negative")
        count = len(pairs)
        out = np.full(count, bound + 1, dtype=np.int32)
        # Trivial rows never enter the DP: equal pairs, empty sides (which
        # mirror the scalar function's full-length shortcut) and pairs whose
        # length gap already exceeds the bound.
        active: list[int] = []
        for index, (a, b) in enumerate(pairs):
            if a == b:
                out[index] = 0
            elif not a or not b:
                out[index] = min(len(a) + len(b), bound + 1)
            elif abs(len(a) - len(b)) > bound:
                out[index] = bound + 1
            else:
                active.append(index)
        if not active:
            return out.tolist()

        a_lens = np.array([len(pairs[i][0]) for i in active], dtype=np.int32)
        b_lens = np.array([len(pairs[i][1]) for i in active], dtype=np.int32)
        max_a = int(a_lens.max())
        max_b = int(b_lens.max())
        rows = len(active)
        width = 2 * bound + 1
        big = self._BIG

        # Character matrices: ASCII strings (the DNA alphabet case) pack as
        # uint8 via frombuffer; anything wider falls back to uint32 code
        # points so the numpy backend accepts exactly the inputs the
        # python backend does.  Sentinels are outside either range.
        try:
            encoded = [
                (pairs[i][0].encode("ascii"), pairs[i][1].encode("ascii"))
                for i in active
            ]
        except UnicodeEncodeError:
            encoded = None
        if encoded is not None:
            dtype, sentinel = np.uint8, 0xFF
        else:
            dtype, sentinel = np.uint32, 0x110000  # beyond any code point
        left = np.zeros((rows, max_a), dtype=dtype)
        # The right strings are padded with sentinel columns so the band
        # window of every row (it shifts with the left index, which can run
        # up to `bound` past the longest right string) slices in-range.
        padded_width = max(max_b, max_a + bound) + bound + 1
        right = np.full((rows, padded_width), sentinel, dtype=dtype)
        for row, index in enumerate(active):
            a, b = pairs[index]
            if encoded is not None:
                left[row, : len(a)] = np.frombuffer(encoded[row][0], dtype=np.uint8)
                right[row, bound : bound + len(b)] = np.frombuffer(
                    encoded[row][1], dtype=np.uint8
                )
            else:
                left[row, : len(a)] = np.fromiter(map(ord, a), np.uint32, len(a))
                right[row, bound : bound + len(b)] = np.fromiter(
                    map(ord, b), np.uint32, len(b)
                )

        offsets = np.arange(width, dtype=np.int32)
        pending = np.full(rows, bound + 1, dtype=np.int32)
        done = np.zeros(rows, dtype=bool)
        # Band row 0: cell t holds D[0][j] with j = t - bound.
        band = np.where(
            offsets >= bound, offsets - bound, np.int32(big)
        ).astype(np.int32)
        band = np.tile(band, (rows, 1))
        for i in range(1, max_a + 1):
            # j = i - bound + t; cost[t] compares left[i-1] to right[j-1].
            window = right[:, i - 1 : i - 1 + width]
            cost = (left[:, i - 1 : i] != window).astype(np.int32)
            diagonal = band + cost
            above = np.concatenate(
                [band[:, 1:], np.full((rows, 1), big, dtype=np.int32)], axis=1
            )
            current = np.minimum(diagonal, above + 1)
            if i <= bound:
                current[:, bound - i] = i  # column j = 0
            # Mask cells whose column leaves [0, len(b)].
            columns = i - bound + offsets
            invalid = (columns[None, :] < 0) | (columns[None, :] > b_lens[:, None])
            current[invalid] = big
            # Insertions: a prefix-min scan along the band (j increases
            # with t), D[i][j] = min over t' <= t of pre[t'] + (t - t').
            shifted = current - offsets
            np.minimum.accumulate(shifted, axis=1, out=shifted)
            current = np.minimum(current, shifted + offsets)
            current[invalid] = big
            # Pairs whose left string ends at this row are finished; their
            # distance sits at t = len(b) - len(a) + bound.
            finishing = (a_lens == i) & ~done
            if finishing.any():
                where = np.nonzero(finishing)[0]
                pending[where] = current[where, b_lens[where] - i + bound]
                done[where] = True
                current[where] = big
            band = current
            if bool(done.all()) or int(band.min()) > bound:
                break
        out[np.array(active, dtype=np.int64)] = np.minimum(pending, bound + 1)
        return out.tolist()


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def available_distance_backends() -> list[str]:
    """Names of the distance backends usable in this environment."""
    names = ["python"]
    if _numpy_available():
        names.append("numpy")
    return names


def get_distance_backend(
    name: str | DistanceBackend | None = None,
) -> DistanceBackend:
    """Resolve a distance backend by name (or pass an instance through).

    Args:
        name: ``"numpy"``, ``"python"``, ``"auto"``/None (environment
            variable then autodetection), or an existing backend instance.

    Raises:
        ClusteringError: for unknown names, or when the numpy backend is
            requested explicitly but numpy is not installed.
    """
    if isinstance(name, DistanceBackend):
        return name
    requested = name or envflags.read(_ENV_VARIABLE)
    requested = requested.strip().lower()
    if requested == "auto":
        requested = "numpy" if _numpy_available() else "python"
    cached = _instances.get(requested)
    if cached is not None:
        return cached
    if requested == "python":
        backend: DistanceBackend = PythonDistanceBackend()
    elif requested == "numpy":
        if not _numpy_available():
            raise ClusteringError(
                "the numpy distance backend was requested but numpy is not installed"
            )
        backend = NumpyDistanceBackend()
    else:
        raise ClusteringError(
            f"unknown distance backend {requested!r}; expected one of "
            f"{['auto', 'python', 'numpy']}"
        )
    _instances[requested] = backend
    return backend


__all__ = [
    "DistanceBackend",
    "NumpyDistanceBackend",
    "PythonDistanceBackend",
    "available_distance_backends",
    "get_distance_backend",
]
