"""Trace reconstruction: recovering the original strand from noisy copies.

Each cluster holds several noisy reads of the same original strand, with
substitutions, insertions and deletions.  The paper reconstructs the
original with the double-sided BMA (bitwise majority alignment) algorithm
of Lin et al.: BMA is run left-to-right and right-to-left and the two
reconstructions are stitched together, which makes the result robust to
indels near either end.
"""

from __future__ import annotations

from collections import Counter

from repro.exceptions import ReconstructionError


def majority_consensus(reads: list[str], length: int) -> str:
    """Naive per-position majority vote (no indel handling).

    Useful as a baseline and for nearly-error-free clusters; positions
    beyond a read's end simply do not vote.
    """
    if not reads:
        raise ReconstructionError("cannot build a consensus from zero reads")
    out = []
    for position in range(length):
        votes = Counter(read[position] for read in reads if position < len(read))
        if not votes:
            out.append("A")
            continue
        out.append(votes.most_common(1)[0][0])
    return "".join(out)


def bma_consensus(reads: list[str], length: int) -> str:
    """One-directional bitwise majority alignment (BMA) trace reconstruction.

    Classic BMA for the known-length setting: a per-read pointer walks each
    read; at every output position the pointed-at symbols vote, the
    majority symbol is emitted, and each pointer advances by 0, 1 or 2
    positions depending on whether that read appears to have suffered a
    deletion, no error, or an insertion at this point.

    Args:
        reads: noisy copies of the same strand.
        length: the (known) length of the original strand.

    Returns:
        The reconstructed strand of exactly ``length`` bases.
    """
    if not reads:
        raise ReconstructionError("cannot build a consensus from zero reads")
    pointers = [0] * len(reads)
    out: list[str] = []
    for _ in range(length):
        votes = Counter()
        for read, pointer in zip(reads, pointers):
            if pointer < len(read):
                votes[read[pointer]] += 1
        if not votes:
            out.append("A")
            continue
        majority = votes.most_common(1)[0][0]
        out.append(majority)
        for index, (read, pointer) in enumerate(zip(reads, pointers)):
            if pointer >= len(read):
                continue
            if read[pointer] == majority:
                pointers[index] = pointer + 1
            elif pointer + 1 < len(read) and read[pointer + 1] == majority:
                # The read has an extra (inserted) symbol here: skip it and
                # consume the matching one.
                pointers[index] = pointer + 2
            else:
                # Assume the read deleted the majority symbol: do not advance
                # unless the current symbol also fails to match the *next*
                # couple of outputs, in which case treating it as a
                # substitution (advancing) recovers alignment.  The cheap
                # heuristic below advances on apparent substitutions.
                remaining_read = len(read) - pointer
                remaining_output = length - len(out)
                if remaining_read > remaining_output:
                    pointers[index] = pointer + 1
    return "".join(out)


def double_sided_bma(reads: list[str], length: int) -> str:
    """Double-sided BMA: run BMA from both ends and stitch at the middle.

    The left half of the result comes from the forward pass and the right
    half from the backward pass (computed on reversed reads), which confines
    the error-accumulation of each pass to the far end that it does not
    contribute.
    """
    if not reads:
        raise ReconstructionError("cannot build a consensus from zero reads")
    forward = bma_consensus(reads, length)
    backward = bma_consensus([read[::-1] for read in reads], length)[::-1]
    half = length // 2
    return forward[:half] + backward[half:]
