"""Trace reconstruction: recovering the original strand from noisy copies.

Each cluster holds several noisy reads of the same original strand, with
substitutions, insertions and deletions.  The paper reconstructs the
original with the double-sided BMA (bitwise majority alignment) algorithm
of Lin et al.: BMA is run left-to-right and right-to-left and the two
reconstructions are stitched together, which makes the result robust to
indels near either end.

Two implementations are provided behind one batch API:

* the scalar reference (:func:`bma_consensus` / :func:`double_sided_bma`),
  one cluster at a time — the oracle;
* a numpy kernel that advances the pointers of **every read of every
  cluster of a readout together**, one array step per output position, so
  a whole readout's trace reconstruction collapses into ~2x``length``
  vectorized rounds instead of millions of per-read Python iterations.

Both produce byte-identical strands (``tests/test_consensus_backends.py``
asserts it, including the majority tie-break, which follows ``Counter``
first-insertion order).  Resolution mirrors the other backend seams:
explicit name, then ``REPRO_CONSENSUS_BACKEND``, then autodetection.
"""

from __future__ import annotations

from repro import envflags
from collections import Counter
from typing import Sequence

from repro.exceptions import ReconstructionError
from repro.fastpath import fused_kernels_enabled

_ENV_VARIABLE = "REPRO_CONSENSUS_BACKEND"


def majority_consensus(reads: list[str], length: int) -> str:
    """Naive per-position majority vote (no indel handling).

    Useful as a baseline and for nearly-error-free clusters; positions
    beyond a read's end simply do not vote.
    """
    if not reads:
        raise ReconstructionError("cannot build a consensus from zero reads")
    out = []
    for position in range(length):
        votes = Counter(read[position] for read in reads if position < len(read))
        if not votes:
            out.append("A")
            continue
        out.append(votes.most_common(1)[0][0])
    return "".join(out)


def bma_consensus(reads: list[str], length: int) -> str:
    """One-directional bitwise majority alignment (BMA) trace reconstruction.

    Classic BMA for the known-length setting: a per-read pointer walks each
    read; at every output position the pointed-at symbols vote, the
    majority symbol is emitted, and each pointer advances by 0, 1 or 2
    positions depending on whether that read appears to have suffered a
    deletion, no error, or an insertion at this point.

    Args:
        reads: noisy copies of the same strand.
        length: the (known) length of the original strand.

    Returns:
        The reconstructed strand of exactly ``length`` bases.
    """
    if not reads:
        raise ReconstructionError("cannot build a consensus from zero reads")
    pointers = [0] * len(reads)
    out: list[str] = []
    for _ in range(length):
        votes = Counter()
        for read, pointer in zip(reads, pointers):
            if pointer < len(read):
                votes[read[pointer]] += 1
        if not votes:
            out.append("A")
            continue
        majority = votes.most_common(1)[0][0]
        out.append(majority)
        for index, (read, pointer) in enumerate(zip(reads, pointers)):
            if pointer >= len(read):
                continue
            if read[pointer] == majority:
                pointers[index] = pointer + 1
            elif pointer + 1 < len(read) and read[pointer + 1] == majority:
                # The read has an extra (inserted) symbol here: skip it and
                # consume the matching one.
                pointers[index] = pointer + 2
            else:
                # Assume the read deleted the majority symbol: do not advance
                # unless the current symbol also fails to match the *next*
                # couple of outputs, in which case treating it as a
                # substitution (advancing) recovers alignment.  The cheap
                # heuristic below advances on apparent substitutions.
                remaining_read = len(read) - pointer
                remaining_output = length - len(out)
                if remaining_read > remaining_output:
                    pointers[index] = pointer + 1
    return "".join(out)


def double_sided_bma(reads: list[str], length: int) -> str:
    """Double-sided BMA: run BMA from both ends and stitch at the middle.

    The left half of the result comes from the forward pass and the right
    half from the backward pass (computed on reversed reads), which confines
    the error-accumulation of each pass to the far end that it does not
    contribute.
    """
    if not reads:
        raise ReconstructionError("cannot build a consensus from zero reads")
    forward = bma_consensus(reads, length)
    backward = bma_consensus([read[::-1] for read in reads], length)[::-1]
    half = length // 2
    return forward[:half] + backward[half:]


def split_consensus_batches(
    read_groups: Sequence[list[str]], batches: int
) -> list[list[list[str]]]:
    """Split a consensus workload into contiguous, read-balanced chunks.

    Group boundaries depend only on the group sizes, so the split is
    deterministic, and groups reconstruct independently, so concatenating
    the per-chunk :func:`consensus_batch` outputs equals one whole-batch
    call — which is what lets the decode engine farm consensus chunks to
    different workers without changing a single strand.
    """
    if not read_groups:
        return []
    if batches <= 1 or len(read_groups) == 1:
        return [list(read_groups)]
    total = sum(len(group) for group in read_groups)
    chunks: list[list[list[str]]] = []
    current: list[list[str]] = []
    consumed = 0
    for group in read_groups:
        current.append(group)
        consumed += len(group)
        if (
            len(chunks) + 1 < batches
            and consumed * batches >= total * (len(chunks) + 1)
        ):
            chunks.append(current)
            current = []
    if current:
        chunks.append(current)
    return chunks


# ----------------------------------------------------------------------
# Batched consensus
# ----------------------------------------------------------------------
def _numpy_or_none():
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def available_consensus_backends() -> list[str]:
    """Names of the consensus backends usable in this environment."""
    names = ["python"]
    if _numpy_or_none() is not None:
        names.append("numpy")
    return names


def _resolve_backend(backend: str | None) -> str:
    requested = (backend or envflags.read(_ENV_VARIABLE)).strip().lower()
    if requested == "auto":
        # The fused-kernel switch only moves the *default*: an explicit
        # backend name (argument or environment) is always honored.
        requested = (
            "numpy"
            if _numpy_or_none() is not None and fused_kernels_enabled()
            else "python"
        )
    if requested not in ("python", "numpy"):
        raise ReconstructionError(
            f"unknown consensus backend {requested!r}; expected one of "
            f"{['auto', 'python', 'numpy']}"
        )
    if requested == "numpy" and _numpy_or_none() is None:
        raise ReconstructionError(
            "the numpy consensus backend was requested but numpy is not installed"
        )
    return requested


def consensus_batch(
    read_groups: Sequence[list[str]],
    length: int,
    backend: str | None = None,
) -> list[str]:
    """:func:`double_sided_bma` of many clusters in one call.

    Args:
        read_groups: one list of noisy reads per cluster (each non-empty).
        length: the (known) strand length, shared by every cluster.
        backend: ``"python"``, ``"numpy"``, or ``"auto"``/None (the
            ``REPRO_CONSENSUS_BACKEND`` environment variable, then
            autodetection).  Both backends return byte-identical strands.

    Returns:
        The reconstructed strand of each group, in order.
    """
    if not read_groups:
        return []
    for group in read_groups:
        if not group:
            raise ReconstructionError("cannot build a consensus from zero reads")
    resolved = _resolve_backend(backend)
    if resolved == "numpy":
        strands = _consensus_batch_numpy(read_groups, length)
        if strands is not None:
            return strands
    return [double_sided_bma(group, length) for group in read_groups]


def _consensus_batch_numpy(
    read_groups: Sequence[list[str]], length: int
) -> list[str] | None:
    """Vectorized double-sided BMA; ``None`` defers to the scalar path.

    The only deferral is non-ASCII input (reads cannot pack into a uint8
    matrix); the DNA alphabet never hits it.
    """
    np = _numpy_or_none()
    flat_reads = [read for group in read_groups for read in group]
    try:
        blob = "".join(flat_reads).encode("ascii")
    except UnicodeEncodeError:
        return None

    group_sizes = np.array([len(group) for group in read_groups], dtype=np.int64)
    group_count = len(read_groups)
    total = len(flat_reads)
    lengths = np.array([len(read) for read in flat_reads], dtype=np.int64)
    group_of = np.repeat(np.arange(group_count, dtype=np.int64), group_sizes)
    group_start = np.concatenate(([0], np.cumsum(group_sizes)[:-1]))
    group_end = np.cumsum(group_sizes)

    flat = np.frombuffer(blob, dtype=np.uint8)
    max_len = int(lengths.max()) if total else 0
    # Two padding columns so a pointer that ran (at most) one position past
    # its read still gathers in-bounds (the value is masked out).
    width = max_len + 2
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    column = np.arange(max_len, dtype=np.int64)
    in_read = column[None, :] < lengths[:, None]
    matrix = np.zeros((total, width), dtype=np.uint8)
    reversed_matrix = np.zeros((total, width), dtype=np.uint8)
    if max_len:
        gather = np.minimum(starts[:, None] + column[None, :], max(len(flat) - 1, 0))
        matrix[:, :max_len] = np.where(in_read, flat[gather], 0)
        gather_rev = np.clip(
            starts[:, None] + lengths[:, None] - 1 - column[None, :],
            0,
            max(len(flat) - 1, 0),
        )
        reversed_matrix[:, :max_len] = np.where(in_read, flat[gather_rev], 0)

    # Compact alphabet codes: votes are counted per (group, symbol) with
    # one bincount, so symbols must be dense small ints.
    alphabet = np.unique(flat) if len(flat) else np.zeros(0, dtype=np.uint8)
    lut = np.zeros(256, dtype=np.int64)
    lut[alphabet] = np.arange(len(alphabet), dtype=np.int64)

    forward = _bma_batch_numpy(
        np, matrix, lengths, group_of, group_start, group_end,
        group_count, length, alphabet, lut,
    )
    backward = _bma_batch_numpy(
        np, reversed_matrix, lengths, group_of, group_start, group_end,
        group_count, length, alphabet, lut,
    )
    half = length // 2
    stitched = np.concatenate(
        (forward[:, :half], backward[:, ::-1][:, half:]), axis=1
    )
    return [bytes(row).decode("ascii") for row in stitched]


def _bma_batch_numpy(
    np, matrix, lengths, group_of, group_start, group_end,
    group_count, length, alphabet, lut,
):
    """One-directional batch BMA over a padded read matrix.

    Mirrors :func:`bma_consensus` exactly, one vectorized round per output
    position: gather the pointed-at symbol of every read, count votes per
    (group, symbol) with a single ``bincount``, emit each group's majority
    and advance every pointer by the same 0/1/2 rule.  The scalar
    majority's tie-break (``Counter.most_common(1)`` returns the max-count
    symbol *first inserted*, i.e. first voted in read order) is reproduced
    by a per-tie scan over the group's reads; ties are rare, so the scan
    stays off the hot path.
    """
    total, width = matrix.shape
    codes = lut[matrix]
    flat_codes = codes.ravel()
    row_base = np.arange(total, dtype=np.int64) * width
    row_index = np.arange(total, dtype=np.int64)
    symbol_count = max(1, len(alphabet))
    group_key = group_of * symbol_count
    pointers = np.zeros(total, dtype=np.int64)
    out = np.full((group_count, length), ord("A"), dtype=np.uint8)
    for step in range(length):
        valid = pointers < lengths
        sym = np.take(flat_codes, row_base + pointers, mode="clip")
        combined = group_key + sym
        counts = np.bincount(
            combined[valid], minlength=group_count * symbol_count
        )
        peak = counts.reshape(group_count, symbol_count).max(axis=1)
        # The majority is the max-count symbol *first inserted* into the
        # scalar Counter — i.e. the symbol of the earliest read (in group
        # order) that votes for any max-count symbol.  Reads are stored
        # group-contiguously, so one reduceat finds that read per group.
        peak_of_read = peak[group_of]
        is_peak_voter = valid & (counts[combined] == peak_of_read) & (peak_of_read > 0)
        first_voter = np.minimum.reduceat(
            np.where(is_peak_voter, row_index, total), group_start
        )
        majority = sym[np.minimum(first_voter, total - 1)]
        voted = peak > 0
        out[voted, step] = alphabet[majority[voted]]
        # Pointer advance: match -> +1; inserted symbol (next matches the
        # majority) -> +2; apparent deletion -> stall unless the read has
        # more symbols left than the output does (then treat it as a
        # substitution and advance).
        majority_of_read = majority[group_of]
        has_next = (pointers + 1) < lengths
        next_sym = np.take(flat_codes, row_base + pointers + 1, mode="clip")
        match = valid & (sym == majority_of_read)
        insertion = valid & ~match & has_next & (next_sym == majority_of_read)
        substitution = (
            valid & ~match & ~insertion
            & ((lengths - pointers) > (length - step - 1))
        )
        pointers = pointers + match + 2 * insertion + substitution
    return out
