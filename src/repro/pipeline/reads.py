"""Read pre-processing: primer location, prefix filtering, region extraction.

The first step of the decoding procedure (Section 8) is to search each read
for the elongated forward primer and the reverse primer and keep only the
region between them.  Reads are noisy, so primers are located by banded
approximate matching rather than exact string search.
"""

from __future__ import annotations

from repro.exceptions import DecodingError
from repro.sequence import levenshtein_distance


def find_primer_end(
    read: str,
    primer: str,
    *,
    max_errors: int = 3,
    search_window: int = 4,
) -> int | None:
    """Locate a primer near the start of a read and return its end offset.

    The primer is expected at the very beginning of the read (possibly
    shifted by a few inserted/deleted bases).  Candidate windows starting at
    offsets ``0..search_window`` and of lengths ``len(primer) +/- slack``
    are compared by edit distance; the end offset of the best window within
    ``max_errors`` is returned, or ``None`` if no window qualifies.
    """
    if not primer:
        raise DecodingError("primer must be non-empty")
    # Fast path: the overwhelming majority of reads carry the primer intact
    # at offset zero.
    if read.startswith(primer):
        return len(primer)
    best_end: int | None = None
    best_distance = max_errors + 1
    for start in range(0, search_window + 1):
        for slack in (0, -1, 1, -2, 2):
            end = start + len(primer) + slack
            if end <= start or end > len(read):
                continue
            window = read[start:end]
            distance = levenshtein_distance(window, primer, upper_bound=max_errors)
            if distance < best_distance:
                best_distance = distance
                best_end = end
                if best_distance == 0:
                    return best_end
    if best_distance > max_errors:
        return None
    return best_end


def has_prefix(read: str, prefix: str, *, max_errors: int = 3) -> bool:
    """True if the read begins with ``prefix`` up to ``max_errors`` edits."""
    window = read[: len(prefix)]
    if len(window) == len(prefix):
        # Cheap Hamming screen: most reads carry the prefix intact or with a
        # couple of substitutions, so a mismatch count within the budget
        # accepts immediately without any edit-distance computation.
        mismatches = sum(1 for a, b in zip(window, prefix) if a != b)
        if mismatches <= max_errors:
            return True
    # One banded edit-distance comparison over a slightly extended window
    # handles insertions/deletions anywhere in the prefix region.
    extended = read[: len(prefix) + max_errors]
    return (
        levenshtein_distance(extended[: len(prefix)], prefix, upper_bound=max_errors)
        <= max_errors
        or levenshtein_distance(extended, prefix, upper_bound=max_errors) <= max_errors
    )


def reads_with_prefix(
    reads: list[str], prefix: str, *, max_errors: int = 3
) -> list[str]:
    """Filter reads to those that begin with the expected prefix.

    This is the step that discards the ~18% of reads amplified by leftover
    main primers in the paper's precise-access experiment (they do not
    carry the elongated prefix).
    """
    return [read for read in reads if has_prefix(read, prefix, max_errors=max_errors)]


def extract_region(
    read: str,
    forward_primer: str,
    reverse_primer: str,
    *,
    max_errors: int = 3,
) -> str | None:
    """Extract the region between the forward and reverse primers of a read.

    Returns ``None`` when either primer cannot be located.  The reverse
    primer is searched near the end of the read (its expected location).
    """
    forward_end = find_primer_end(read, forward_primer, max_errors=max_errors)
    if forward_end is None:
        return None
    # Search for the reverse primer near the read's tail by mirroring the
    # forward search on the reversed strings.
    reversed_end = find_primer_end(
        read[::-1], reverse_primer[::-1], max_errors=max_errors
    )
    if reversed_end is None:
        return None
    reverse_start = len(read) - reversed_end
    if reverse_start < forward_end:
        return None
    return read[forward_end:reverse_start]
