"""End-to-end block decoding from sequencing reads (Section 8).

The :class:`BlockDecoder` binds a :class:`repro.core.partition.Partition`
(which knows the primers, index tree, randomizer and ECC geometry) to the
read-processing pipeline (primer filtering, clustering, trace
reconstruction) and reproduces the decoding procedure of Section 8,
including the handling of misprimed strands of Section 8.1:

1. keep reads carrying the expected (elongated) prefix;
2. cluster them and reconstruct cluster consensi, largest clusters first;
3. collect candidate strands per (slot, column) address — the first
   (largest-cluster) candidate is preferred, but further candidates are kept
   because a misprimed strand can present itself with the target's address;
4. decode each encoding unit with Reed-Solomon (missing columns are
   erasures); if decoding fails, retry with alternate candidates and by
   demoting the weakest-evidence columns to erasures (the bounded version of
   the recursive candidate search described in Section 8.1);
5. de-randomize, parse update patches, and apply them in slot order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.codec.molecule import Molecule
from repro.core.partition import Partition
from repro.core.updates import UpdatePatch, apply_patch_chain
from repro.exceptions import (
    DecodingError,
    PartitionError,
    ReedSolomonError,
    UpdateError,
)
from repro.pipeline.clustering import ReadCluster, cluster_reads
from repro.pipeline.consensus import consensus_batch, double_sided_bma
from repro.pipeline.reads import reads_with_prefix
from repro.observability.stages import stage


@dataclass
class _Candidate:
    """One candidate payload for a (slot, column) address."""

    payload: bytes
    cluster_size: int


@dataclass
class ReadoutPlan:
    """The prefix-filtered input of one readout decode.

    Produced by :meth:`BlockDecoder.readout_plan`; downstream stages
    (clustering, consensus, candidate collection, solving) consume the
    plan instead of re-deriving targets and filtered reads, which lets
    the staged decode engine run those stages as separate pool tasks.
    """

    targets: list[int]
    reads_total: int
    on_prefix: list[str]


@dataclass
class ReadoutCandidates:
    """Per-block candidate strands collected from a readout's clusters.

    ``batch_units`` holds the primary-candidate column maps of every
    (block, slot) unit with enough columns to attempt a batched
    Reed-Solomon decode; ``by_block_slot`` keeps the full candidate lists
    for the per-slot fallback search of Section 8.1.
    """

    clusters_total: int
    duplicates: dict[int, int]
    by_block_slot: dict[int, dict[int, dict[int, list[_Candidate]]]]
    batch_units: dict[tuple[int, int], dict[int, bytes]]


def try_decode_units_batch(
    partition: Partition, units: dict, keys: list | None = None
) -> dict:
    """Batch-decode keyed unit column maps, bisecting around failures.

    All units go through one :meth:`Partition.decode_units_batch` call;
    if any unit is uncorrectable the batch is split in half so healthy
    units still decode in bulk and only failures drop out (they are
    retried later by the per-slot candidate search).  A module-level
    function so the decode engine can run the solve stage in a worker
    without shipping a :class:`BlockDecoder`.
    """
    keys = list(units) if keys is None else keys
    if not keys:
        return {}
    try:
        decoded = partition.decode_units_batch([units[k] for k in keys])
        return dict(zip(keys, decoded))
    except (ReedSolomonError, DecodingError):
        if len(keys) == 1:
            return {}
        middle = len(keys) // 2
        results = try_decode_units_batch(partition, units, keys[:middle])
        results.update(try_decode_units_batch(partition, units, keys[middle:]))
        return results


@dataclass
class DecodeReport:
    """Everything the decoder learned while decoding one block.

    Attributes:
        block: the target block number.
        data: the decoded, update-applied block contents (None on failure).
        success: whether decoding produced data.
        reads_total: reads given to the decoder.
        reads_on_prefix: reads that carried the expected prefix.
        clusters_total: clusters formed from the on-prefix reads.
        clusters_used: clusters consumed (in size order).
        strands_recovered: distinct (slot, column) addresses with at least
            one candidate strand.
        duplicate_strands_discarded: reconstructed strands kept only as
            secondary candidates because their address was already covered
            (mispriming, Section 8.1).
        decode_attempts: unit-decode attempts across all slots (1 means the
            primary candidates decoded immediately).
        slots_recovered: version slots for which a unit was decoded.
        used_error_correction: True if any Reed-Solomon correction, erasure
            fill-in or candidate substitution was required.
    """

    block: int
    data: bytes | None = None
    success: bool = False
    reads_total: int = 0
    reads_on_prefix: int = 0
    clusters_total: int = 0
    clusters_used: int = 0
    strands_recovered: int = 0
    duplicate_strands_discarded: int = 0
    decode_attempts: int = 0
    slots_recovered: list[int] = field(default_factory=list)
    used_error_correction: bool = False


class BlockDecoder:
    """Decodes blocks of one partition from raw sequencing reads."""

    def __init__(
        self,
        partition: Partition,
        *,
        max_prefix_errors: int = 3,
        max_read_distance: int = 12,
        max_candidates_per_address: int = 3,
        max_decode_attempts_per_slot: int = 48,
        distance_backend=None,
        cluster_shards: int | None = None,
    ) -> None:
        self.partition = partition
        self.max_prefix_errors = max_prefix_errors
        self.max_read_distance = max_read_distance
        self.max_candidates_per_address = max_candidates_per_address
        self.max_decode_attempts_per_slot = max_decode_attempts_per_slot
        #: Distance backend used by the clustering pass (``"python"``,
        #: ``"numpy"``, ``None`` for auto); both produce identical clusters.
        self.distance_backend = distance_backend
        #: Clustering shard count (``None`` = ``REPRO_CLUSTER_SHARDS``);
        #: any value yields byte-identical clusters.
        self.cluster_shards = cluster_shards

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @property
    def _layout(self):
        return self.partition.config.molecule_layout

    def _signature_window(self) -> tuple[int, int]:
        """Offset and length of the address region within a clean strand."""
        layout = self._layout
        start = layout.primer_length + layout.sync_bases
        length = (
            layout.unit_index_bases + layout.update_slot_bases + layout.intra_index_bases
        )
        return start, length

    def _reconstruct(self, cluster: ReadCluster) -> Molecule | None:
        """Reconstruct a cluster's strand and parse it into a molecule."""
        strand = double_sided_bma(cluster.reads, self._layout.strand_length)
        try:
            return Molecule.from_strand(strand, self._layout)
        except DecodingError:
            return None

    def consensus_strands(self, clusters: list[ReadCluster]) -> list[str]:
        """Reconstruct every cluster's consensus strand in one batched call."""
        with stage("consensus"):
            return consensus_batch(
                [cluster.reads for cluster in clusters], self._layout.strand_length
            )

    def parse_strands(self, strands: list[str]) -> list[Molecule | None]:
        """Parse consensus strands into molecules (None for malformed ones)."""
        molecules: list[Molecule | None] = []
        for strand in strands:
            try:
                molecules.append(Molecule.from_strand(strand, self._layout))
            except DecodingError:
                molecules.append(None)
        return molecules

    def _reconstruct_all(self, clusters: list[ReadCluster]) -> list[Molecule | None]:
        """Consensus + parse of every cluster, consensi in one batched call."""
        return self.parse_strands(self.consensus_strands(clusters))

    # ------------------------------------------------------------------
    # Candidate collection
    # ------------------------------------------------------------------
    def _collect_candidates(
        self, clusters: list[ReadCluster], block: int, report: DecodeReport
    ) -> dict[tuple[int, int], list[_Candidate]]:
        candidates: dict[tuple[int, int], list[_Candidate]] = {}
        # Version slots are digital metadata: the partition knows exactly
        # how many patches each block has logged.  A narrow precise access
        # can misprime onto a *neighbouring* block's patch strand and
        # overwrite its address prefix with the target's (PCR products
        # carry their primer), parking a perfectly well-formed phantom
        # patch in a slot the target never wrote — bound slots to the
        # logged count so such artifacts can never apply.
        max_slot = self.partition.update_count(block)
        molecules = self._reconstruct_all(clusters)
        for cluster, molecule in zip(clusters, molecules):
            report.clusters_used += 1
            if molecule is None:
                continue
            address = self.partition.parse_unit_index(molecule.unit_index)
            if address is None or address.block != block:
                continue
            if address.slot > max_slot:
                report.duplicate_strands_discarded += 1
                continue
            key = (address.slot, molecule.intra_index)
            bucket = candidates.setdefault(key, [])
            if bucket:
                report.duplicate_strands_discarded += 1
            if len(bucket) < self.max_candidates_per_address:
                if all(molecule.payload != existing.payload for existing in bucket):
                    bucket.append(
                        _Candidate(payload=molecule.payload, cluster_size=cluster.size)
                    )
        report.strands_recovered = len(candidates)
        return candidates

    # ------------------------------------------------------------------
    # Unit decoding with the bounded candidate search of Section 8.1
    # ------------------------------------------------------------------
    def _try_decode_unit(self, columns: dict[int, bytes]) -> bytes | None:
        try:
            return self.partition.decode_unit(columns)
        except (ReedSolomonError, DecodingError):
            return None

    def _decode_primaries_batched(
        self, by_slot: dict[int, dict[int, list[_Candidate]]]
    ) -> dict[int, bytes]:
        """Decode every slot's primary candidates in one backend pass.

        The common case — enough clean strands per slot — needs no
        candidate substitution, so all units of the block (original plus
        update slots) go through one batched Reed-Solomon decode.  Failed
        slots are absent from the result and fall back to the bounded
        per-slot search.
        """
        data_columns = self.partition.config.unit_layout.data_molecules
        primaries = {
            slot: {
                column: candidates[0].payload
                for column, candidates in by_slot[slot].items()
            }
            for slot in sorted(by_slot)
            if len(by_slot[slot]) >= data_columns
        }
        return try_decode_units_batch(self.partition, primaries)

    def _finish_block(
        self,
        by_slot: dict[int, dict[int, list[_Candidate]]],
        prebatched: dict[int, bytes],
        report: DecodeReport,
    ) -> DecodeReport:
        """Assemble a block from decoded units, applying recovered patches.

        ``prebatched`` holds units already decoded by the batched path;
        slots missing from it go through the per-slot candidate search of
        Section 8.1.
        """

        def decoded_slot(slot: int) -> bytes | None:
            data = prebatched.get(slot)
            if data is not None:
                report.decode_attempts += 1
                if len(by_slot[slot]) < self.partition.molecules_per_block:
                    report.used_error_correction = True
                return data
            return self._decode_slot(by_slot[slot], report)

        original = decoded_slot(0) if 0 in by_slot else None
        if original is None:
            return report
        report.slots_recovered = [0]

        patches: list[UpdatePatch] = []
        for slot in sorted(by_slot):
            if slot == 0:
                continue
            raw = decoded_slot(slot)
            if raw is None:
                continue
            try:
                patches.append(UpdatePatch.from_framed_bytes(raw))
            except UpdateError:
                continue
            report.slots_recovered.append(slot)

        try:
            report.data = apply_patch_chain(original, patches)
        except (UpdateError, PartitionError):
            report.data = original
        report.success = True
        return report

    def _decode_slot(
        self,
        slot_candidates: dict[int, list[_Candidate]],
        report: DecodeReport,
    ) -> bytes | None:
        """Decode one encoding unit from its per-column candidate lists."""
        data_columns = self.partition.config.unit_layout.data_molecules
        if len(slot_candidates) < data_columns:
            return None
        attempts = 0

        def attempt(columns: dict[int, bytes]) -> bytes | None:
            nonlocal attempts
            if attempts >= self.max_decode_attempts_per_slot:
                return None
            attempts += 1
            report.decode_attempts += 1
            return self._try_decode_unit(columns)

        primary = {
            column: candidates[0].payload
            for column, candidates in slot_candidates.items()
        }
        decoded = attempt(primary)
        if decoded is not None:
            if len(primary) < self.partition.molecules_per_block:
                report.used_error_correction = True
            return decoded
        report.used_error_correction = True

        # Swap in alternate candidates, one column at a time, starting with
        # the columns whose primary evidence (cluster size) is weakest.
        weakest_first = sorted(
            slot_candidates, key=lambda column: slot_candidates[column][0].cluster_size
        )
        for column in weakest_first:
            for alternate in slot_candidates[column][1:]:
                swapped = dict(primary)
                swapped[column] = alternate.payload
                decoded = attempt(swapped)
                if decoded is not None:
                    return decoded

        # Demote the weakest columns to erasures (alone, then in pairs).
        erasable = [
            column
            for column in weakest_first
            if len(primary) - 1 >= data_columns
        ]
        for column in erasable:
            reduced = {c: p for c, p in primary.items() if c != column}
            if len(reduced) < data_columns:
                continue
            decoded = attempt(reduced)
            if decoded is not None:
                return decoded
        for pair in combinations(erasable[:6], 2):
            reduced = {c: p for c, p in primary.items() if c not in pair}
            if len(reduced) < data_columns:
                continue
            decoded = attempt(reduced)
            if decoded is not None:
                return decoded
        return None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def decode_block(self, reads: list[str], block: int) -> DecodeReport:
        """Decode one block (and its updates) from sequencing reads.

        Args:
            reads: read strings, e.g. from a precise-PCR sequencing run.
            block: the target block number.

        Returns:
            A :class:`DecodeReport`; ``report.data`` holds the block's
            current contents (original data with all recovered updates
            applied) when ``report.success`` is True.
        """
        report = DecodeReport(block=block, reads_total=len(reads))
        target_prefix = self.partition.primer_for_block(block).sequence
        on_prefix = reads_with_prefix(
            reads, target_prefix, max_errors=self.max_prefix_errors
        )
        report.reads_on_prefix = len(on_prefix)
        if not on_prefix:
            return report

        signature_start, signature_length = self._signature_window()
        with stage("cluster"):
            clusters = cluster_reads(
                on_prefix,
                signature_start=signature_start,
                signature_length=signature_length,
                max_read_distance=self.max_read_distance,
                distance_backend=self.distance_backend,
                shards=self.cluster_shards,
            )
        report.clusters_total = len(clusters)

        candidates = self._collect_candidates(clusters, block, report)
        by_slot: dict[int, dict[int, list[_Candidate]]] = {}
        for (slot, column), column_candidates in candidates.items():
            by_slot.setdefault(slot, {})[column] = column_candidates
        if 0 not in by_slot:
            return report

        with stage("syndrome_solve"):
            prebatched = self._decode_primaries_batched(by_slot)
            return self._finish_block(by_slot, prebatched, report)

    def decode_partition(self, reads: list[str]) -> dict[int, DecodeReport]:
        """Decode every written block of the partition from a full readout.

        Intended for whole-partition retrievals (the baseline random access
        of Figure 9a): the reads are filtered per block by prefix and each
        block is decoded independently.  For the batched alternative that
        clusters the readout once, see :meth:`decode_readout`.
        """
        reports: dict[int, DecodeReport] = {}
        for block in self.partition.written_blocks():
            reports[block] = self.decode_block(reads, block)
        return reports

    # ------------------------------------------------------------------
    # Readout decode, decomposed by stage.  ``decode_readout`` composes
    # these pieces inline; the staged decode engine drives the same
    # pieces with the cluster shards, consensus batches and the batched
    # solve running as separate pool tasks — byte-identical either way.
    # ------------------------------------------------------------------
    def readout_plan(
        self, reads: list[str], blocks: list[int] | None = None
    ) -> ReadoutPlan:
        """Resolve targets and prefix-filter the readout's reads."""
        targets = self.partition.written_blocks() if blocks is None else list(blocks)
        main_prefix = self.partition.config.primers.forward
        on_prefix = reads_with_prefix(
            reads, main_prefix, max_errors=self.max_prefix_errors
        )
        return ReadoutPlan(
            targets=targets, reads_total=len(reads), on_prefix=on_prefix
        )

    def cluster_readout(self, plan: ReadoutPlan) -> list[ReadCluster]:
        """Cluster the plan's on-prefix reads (one shared pass per readout)."""
        signature_start, signature_length = self._signature_window()
        with stage("cluster"):
            return cluster_reads(
                plan.on_prefix,
                signature_start=signature_start,
                signature_length=signature_length,
                max_read_distance=self.max_read_distance,
                distance_backend=self.distance_backend,
                shards=self.cluster_shards,
            )

    def collect_readout(
        self,
        plan: ReadoutPlan,
        clusters: list[ReadCluster],
        strands: list[str],
    ) -> ReadoutCandidates:
        """Attribute consensus strands to blocks and build the solve batch.

        Strands are attributed by their parsed unit index (mispriming
        keeps extra candidates, Section 8.1); the primary candidates of
        every (block, slot) unit with enough columns become one entry of
        the batched Reed-Solomon solve.
        """
        target_set = set(plan.targets)
        molecules = self.parse_strands(strands)
        per_block: dict[int, dict[tuple[int, int], list[_Candidate]]] = {}
        duplicates: dict[int, int] = {}
        for cluster, molecule in zip(clusters, molecules):
            if molecule is None:
                continue
            address = self.partition.parse_unit_index(molecule.unit_index)
            if address is None or address.block not in target_set:
                continue
            if address.slot > self.partition.update_count(address.block):
                # Phantom version slot: a misprimed product of a
                # neighbouring block's patch strand whose prefix the
                # precise primer overwrote.  Slot counts are digital
                # metadata, so slots the block never logged cannot apply.
                duplicates[address.block] = duplicates.get(address.block, 0) + 1
                continue
            key = (address.slot, molecule.intra_index)
            bucket = per_block.setdefault(address.block, {}).setdefault(key, [])
            if bucket:
                duplicates[address.block] = duplicates.get(address.block, 0) + 1
            if len(bucket) < self.max_candidates_per_address:
                if all(molecule.payload != existing.payload for existing in bucket):
                    bucket.append(
                        _Candidate(payload=molecule.payload, cluster_size=cluster.size)
                    )

        data_columns = self.partition.config.unit_layout.data_molecules
        by_block_slot: dict[int, dict[int, dict[int, list[_Candidate]]]] = {}
        batch_units: dict[tuple[int, int], dict[int, bytes]] = {}
        for block, candidates in per_block.items():
            by_slot: dict[int, dict[int, list[_Candidate]]] = {}
            for (slot, column), column_candidates in candidates.items():
                by_slot.setdefault(slot, {})[column] = column_candidates
            by_block_slot[block] = by_slot
            for slot, columns in by_slot.items():
                if len(columns) >= data_columns:
                    batch_units[(block, slot)] = {
                        column: column_candidates[0].payload
                        for column, column_candidates in columns.items()
                    }
        return ReadoutCandidates(
            clusters_total=len(clusters),
            duplicates=duplicates,
            by_block_slot=by_block_slot,
            batch_units=batch_units,
        )

    def finish_readout(
        self,
        plan: ReadoutPlan,
        collected: ReadoutCandidates,
        decoded_units: dict,
    ) -> dict[int, DecodeReport]:
        """Assemble per-block reports from the batch-solved units.

        Units missing from ``decoded_units`` go through the per-slot
        candidate search of Section 8.1 (inside :meth:`_finish_block`).
        """
        reports: dict[int, DecodeReport] = {}
        for block in plan.targets:
            report = DecodeReport(
                block=block,
                reads_total=plan.reads_total,
                reads_on_prefix=len(plan.on_prefix),
                clusters_total=collected.clusters_total,
                clusters_used=collected.clusters_total,
                duplicate_strands_discarded=collected.duplicates.get(block, 0),
            )
            by_slot = collected.by_block_slot.get(block)
            if by_slot:
                report.strands_recovered = sum(
                    len(columns) for columns in by_slot.values()
                )
                prebatched = {
                    slot: data
                    for (decoded_block, slot), data in decoded_units.items()
                    if decoded_block == block
                }
                self._finish_block(by_slot, prebatched, report)
            reports[block] = report
        return reports

    def decode_readout(
        self,
        reads: list[str],
        blocks: list[int] | None = None,
    ) -> dict[int, DecodeReport]:
        """Decode many blocks from one readout with a single clustering pass.

        Unlike :meth:`decode_partition` (which re-filters and re-clusters
        the readout for every block), this batched path clusters the reads
        once against the partition's main primer, attributes each
        reconstructed strand to its parsed block address, and then decodes
        every recovered encoding unit — all blocks, all update slots — in
        one batched Reed-Solomon pass, falling back to the per-slot
        candidate search only for units the batch could not correct.

        Args:
            reads: read strings of a whole-partition (or multi-block
                range) retrieval.
            blocks: block numbers to decode; defaults to every written
                block of the partition.

        Returns:
            One :class:`DecodeReport` per requested block.  Cluster counts
            in the reports refer to the shared clustering pass.
        """
        plan = self.readout_plan(reads, blocks)
        clusters = self.cluster_readout(plan)
        strands = self.consensus_strands(clusters)
        collected = self.collect_readout(plan, clusters, strands)
        with stage("syndrome_solve"):
            decoded_units = try_decode_units_batch(
                self.partition, collected.batch_units
            )
            return self.finish_readout(plan, collected, decoded_units)
