"""Readout pipeline: from noisy sequencing reads back to block contents.

The pipeline follows the decoding procedure of Section 8:

1. :mod:`repro.pipeline.reads` — locate the (possibly elongated) forward
   primer and the reverse primer in each read and extract the payload
   between them; discard reads that do not carry the expected prefix.
2. :mod:`repro.pipeline.clustering` — cluster reads so that each cluster
   ideally contains the noisy copies of one original strand (address-keyed
   buckets refined by edit-distance agglomeration, after Rashtchian et al.).
3. :mod:`repro.pipeline.consensus` — reconstruct the original strand of
   each cluster with a double-sided bitwise-majority-alignment (BMA) trace
   reconstruction (after Lin et al.).
4. :mod:`repro.pipeline.decoder` — assemble reconstructed strands into
   encoding units, run Reed-Solomon correction, apply update patches, and
   handle mispriming (duplicate-address candidates) as described in
   Section 8.1.
"""

from repro.pipeline.clustering import ReadCluster, cluster_reads
from repro.pipeline.consensus import double_sided_bma, majority_consensus
from repro.pipeline.decoder import BlockDecoder, DecodeReport
from repro.pipeline.distance import (
    DistanceBackend,
    available_distance_backends,
    get_distance_backend,
)
from repro.pipeline.reads import extract_region, find_primer_end, reads_with_prefix

__all__ = [
    "DistanceBackend",
    "ReadCluster",
    "available_distance_backends",
    "cluster_reads",
    "get_distance_backend",
    "double_sided_bma",
    "majority_consensus",
    "BlockDecoder",
    "DecodeReport",
    "extract_region",
    "find_primer_end",
    "reads_with_prefix",
]
