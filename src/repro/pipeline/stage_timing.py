"""Thin compatibility shim over :mod:`repro.observability.stages`.

The per-stage wall-clock collector moved into the observability
subsystem (where :func:`stage` regions also emit wall-clock spans when a
tracer is active).  This module re-exports the same callables so that
existing imports keep working against the *one* shared collector —
there is exactly one timing mechanism, it just lives in
``repro.observability.stages`` now.
"""

from repro.observability.stages import (
    STAGES,
    collect_stages,
    orchestration_seconds,
    record_stages,
    stage,
)

__all__ = [
    "STAGES",
    "collect_stages",
    "stage",
    "record_stages",
    "orchestration_seconds",
]
