"""Clustering of sequencing reads by originating strand.

Follows the approach of the clustering algorithm the paper uses
(Rashtchian et al.): reads are first binned by a cheap signature so that
the expensive edit-distance comparisons only happen within small candidate
sets, then agglomerated greedily around representatives.

For this architecture the natural signature is the address region of the
read (the unit index plus the intra-unit index), which is error-free for
the large majority of reads; reads whose address region is corrupted are
routed to the nearest existing bucket by edit distance over the short
signature, which is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ClusteringError
from repro.sequence import kmer_similarity, levenshtein_distance


@dataclass
class ReadCluster:
    """A cluster of reads presumed to originate from the same strand.

    Attributes:
        signature: the address-region signature the cluster was keyed on.
        reads: the member reads (full read strings).
    """

    signature: str
    reads: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.reads)

    @property
    def size(self) -> int:
        """Number of reads in the cluster."""
        return len(self.reads)

    @property
    def representative(self) -> str:
        """The read used to represent the cluster in comparisons."""
        if not self.reads:
            raise ClusteringError("cluster has no reads")
        return self.reads[0]


def _signature(read: str, signature_start: int, signature_length: int) -> str:
    return read[signature_start : signature_start + signature_length]


def cluster_reads(
    reads: list[str],
    *,
    signature_start: int,
    signature_length: int,
    max_signature_errors: int = 2,
    max_read_distance: int = 12,
    min_kmer_similarity: float = 0.35,
) -> list[ReadCluster]:
    """Cluster reads into per-strand groups.

    Args:
        reads: the read strings (already primer-filtered if desired).
        signature_start: offset of the address region within a clean read.
        signature_length: length of the address region.
        max_signature_errors: how far (edit distance) a read's signature may
            be from a bucket's signature to be routed into that bucket.
        max_read_distance: maximum edit distance between a read and a
            cluster representative for membership; reads farther than this
            from every representative in their bucket start a new cluster
            (this is what separates misprimed payloads that share the
            target's address from the target's own reads).
        min_kmer_similarity: cheap k-mer prefilter threshold applied before
            computing edit distance against a representative.

    Returns:
        Clusters sorted by decreasing size (the order in which the decoder
        consumes them, per Section 8).
    """
    if signature_length <= 0:
        raise ClusteringError("signature_length must be positive")
    buckets: dict[str, list[ReadCluster]] = {}

    for read in reads:
        if len(read) < signature_start + signature_length:
            continue
        signature = _signature(read, signature_start, signature_length)
        bucket = buckets.get(signature)
        if bucket is None:
            # Route to the nearest existing bucket if the signature is a
            # slightly corrupted version of one we have seen.
            nearest_key = None
            nearest_distance = max_signature_errors + 1
            for key in buckets:
                distance = levenshtein_distance(
                    signature, key, upper_bound=max_signature_errors
                )
                if distance < nearest_distance:
                    nearest_distance = distance
                    nearest_key = key
            if nearest_key is not None:
                signature = nearest_key
                bucket = buckets[nearest_key]
            else:
                bucket = []
                buckets[signature] = bucket

        placed = False
        for cluster in bucket:
            representative = cluster.representative
            if kmer_similarity(read, representative) < min_kmer_similarity:
                continue
            if (
                levenshtein_distance(read, representative, upper_bound=max_read_distance)
                <= max_read_distance
            ):
                cluster.reads.append(read)
                placed = True
                break
        if not placed:
            bucket.append(ReadCluster(signature=signature, reads=[read]))

    clusters = [cluster for bucket in buckets.values() for cluster in bucket]
    clusters.sort(key=lambda cluster: cluster.size, reverse=True)
    return clusters
