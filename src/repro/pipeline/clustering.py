"""Clustering of sequencing reads by originating strand.

Follows the approach of the clustering algorithm the paper uses
(Rashtchian et al.): reads are first binned by a cheap signature so that
the expensive edit-distance comparisons only happen within small candidate
sets, then agglomerated greedily around representatives.

For this architecture the natural signature is the address region of the
read (the unit index plus the intra-unit index), which is error-free for
the large majority of reads; reads whose address region is corrupted are
routed to the nearest existing bucket by edit distance over the short
signature.

Three things keep the hot path fast at trace scale without changing a
single clustering decision:

* corrupted-signature routing consults a **deletion-neighborhood index**
  (the SymSpell construction: two signatures within edit distance ``k``
  share a variant obtained by deleting at most ``k`` characters from
  each), replacing the O(#buckets) linear scan per novel signature;
* every read's k-mer set and every representative's k-mer set are
  computed **once** and reused across comparisons;
* representative comparisons are funneled through a
  :class:`repro.pipeline.distance.DistanceBackend` in cross-bucket
  batches, so the numpy backend corrects thousands of read/representative
  pairs per array pass while the pure-Python backend keeps its per-pair
  early exit.

The two phases are exposed separately so the decode engine can
parallelize *within* one readout:

* :func:`route_reads` is the sequential phase-1 pass (routing is
  order-dependent — the nearest-bucket search and the fused route memo
  both depend on which buckets exist *so far* — so it always runs in one
  place);
* :func:`build_shard_payloads` partitions the routed buckets onto
  ``REPRO_CLUSTER_SHARDS`` deterministic shards (CRC32 of the bucket
  signature), :func:`cluster_shard` agglomerates one shard with builtin
  in/out types (worker-safe), and :func:`merge_shard_clusters`
  reassembles shard outputs into the exact serial result.

Sharding is byte-identical at any shard count because phase-2
agglomeration is independent *per bucket*: a read's bucket is fixed
before any shard starts, and bucket signatures are pairwise more than
``max_signature_errors`` apart by construction (a closer signature would
have been routed into the existing bucket, not created), so no
cross-shard comparisons can ever change a membership decision.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro import envflags
from repro.exceptions import ClusteringError
from repro.fastpath import fused_kernels_enabled
from repro.pipeline.distance import DistanceBackend, get_distance_backend
from repro.sequence import kmer_set, levenshtein_distance

#: Bounds of the per-bucket round chunk (reads whose representative
#: comparisons are batched into one backend call).  Only reads of the
#: *same* bucket are order-dependent, and a cluster born inside a round is
#: handled by the post-batch fix-up, so chunking only trades array width
#: against wasted comparisons — it never changes the resulting clusters.
#: The chunk adapts per bucket: stable buckets (reads keep joining
#: existing clusters) grow toward the maximum, buckets that keep spawning
#: clusters shrink so new representatives enter the batched snapshot
#: quickly instead of burning sequential fix-up comparisons.
_CHUNK_START = 8
_CHUNK_MIN = 4
_CHUNK_MAX = 64

_KMER_SIZE = 6

_SHARDS_ENV = "REPRO_CLUSTER_SHARDS"

#: Defaults shared by every clustering entry point (``cluster_reads``,
#: ``route_reads``, ``cluster_shard`` and the decode engine's staged
#: path) so a sharded run can never drift from the serial one by using
#: different thresholds.
DEFAULT_MAX_SIGNATURE_ERRORS = 2
DEFAULT_MAX_READ_DISTANCE = 12
DEFAULT_MIN_KMER_SIMILARITY = 0.35


@dataclass
class ReadCluster:
    """A cluster of reads presumed to originate from the same strand.

    Attributes:
        signature: the address-region signature the cluster was keyed on.
        reads: the member reads (full read strings).
    """

    signature: str
    reads: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.reads)

    @property
    def size(self) -> int:
        """Number of reads in the cluster."""
        return len(self.reads)

    @property
    def representative(self) -> str:
        """The read used to represent the cluster in comparisons."""
        if not self.reads:
            raise ClusteringError("cluster has no reads")
        return self.reads[0]


def resolve_cluster_shards(shards: int | None = None) -> int:
    """The effective clustering shard count: argument, then env, then 1."""
    if shards is None:
        raw = envflags.read(_SHARDS_ENV).strip()
        if raw:
            try:
                shards = int(raw)
            except ValueError:
                raise ClusteringError(
                    f"{_SHARDS_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            shards = 1
    if shards < 1:
        raise ClusteringError("cluster shard count must be >= 1")
    return shards


def shard_of_signature(signature: str, shards: int) -> int:
    """The deterministic home shard of a bucket signature.

    CRC32 is stable across processes, platforms and interpreter runs
    (unlike ``hash()``, which is salted per process), so a bucket lands
    on the same shard wherever the assignment is computed.
    """
    if shards <= 1:
        return 0
    return zlib.crc32(signature.encode("utf-8", "surrogatepass")) % shards


def _signature(read: str, signature_start: int, signature_length: int) -> str:
    return read[signature_start : signature_start + signature_length]


def _kmer_mask(read: str, k: int, bit_of_kmer: dict[str, int]) -> int:
    """The read's distinct k-mers as one bitmask over ``bit_of_kmer``.

    Bits are assigned on first sight, so masks built with one dict are
    comparable across reads; ``mask.bit_count()`` equals
    ``len(kmer_set(read, k))`` and ``(a & b).bit_count()`` the size of the
    corresponding set intersection — the fused Jaccard prefilter turns
    every intersection into a word-parallel AND+popcount.
    """
    mask = 0
    for position in range(len(read) - k + 1):
        kmer = read[position : position + k]
        bit = bit_of_kmer.get(kmer)
        if bit is None:
            bit = bit_of_kmer[kmer] = len(bit_of_kmer)
        mask |= 1 << bit
    return mask


def _deletion_variants(text: str, max_deletions: int) -> set[str]:
    """``text`` and every string obtainable by up to ``max_deletions`` deletes."""
    variants = {text}
    frontier = {text}
    for _ in range(min(max_deletions, len(text))):
        next_frontier = set()
        for current in frontier:
            for position in range(len(current)):
                shorter = current[:position] + current[position + 1 :]
                if shorter not in variants:
                    variants.add(shorter)
                    next_frontier.add(shorter)
        frontier = next_frontier
    return variants


class _SignatureIndex:
    """Deletion-neighborhood index over bucket signatures.

    ``candidates(s)`` returns every indexed signature whose edit distance
    to ``s`` *can* be ``<= max_errors`` (the SymSpell guarantee), in bucket
    creation order, so the caller's nearest-bucket search examines a
    handful of keys instead of every bucket.
    """

    def __init__(self, max_errors: int) -> None:
        self.max_errors = max_errors
        self._by_variant: dict[str, list[str]] = {}
        self._creation_order: dict[str, int] = {}

    def add(self, signature: str) -> None:
        if signature in self._creation_order:
            return
        self._creation_order[signature] = len(self._creation_order)
        for variant in _deletion_variants(signature, self.max_errors):
            self._by_variant.setdefault(variant, []).append(signature)

    def candidates(self, signature: str) -> list[str]:
        found: set[str] = set()
        for variant in _deletion_variants(signature, self.max_errors):
            bucket = self._by_variant.get(variant)
            if bucket:
                found.update(bucket)
        return sorted(found, key=self._creation_order.__getitem__)


@dataclass
class RoutedReads:
    """Outcome of the sequential signature-routing pass (phase 1).

    ``bucket_reads`` maps bucket signature → member read indices, with
    keys in bucket **creation order** (dict insertion order).  Routing is
    what makes sharding safe: every read's bucket is fixed here, before
    any shard starts agglomerating, so shard boundaries can never change
    a membership decision.
    """

    bucket_reads: dict[str, list[int]]


def route_reads(
    reads: Sequence[str],
    *,
    signature_start: int,
    signature_length: int,
    max_signature_errors: int = DEFAULT_MAX_SIGNATURE_ERRORS,
    distance_backend: str | DistanceBackend | None = None,
) -> RoutedReads:
    """Phase 1 — route each read to a signature bucket.

    Routing only depends on which buckets exist, never on cluster
    contents, so it is a cheap sequential pass over the signature index.

    Corrupted signatures repeat heavily (every read of a skewed strand
    shares the same corruption), so the fused path memoizes each routed
    signature's answer.  A memo entry is revalidated incrementally: a
    distance-1 route is final (distance 0 would have hit the exact
    membership check above it), and a farther route can only be beaten
    by a *strictly closer* bucket created since the entry was written,
    so only the new signatures are scanned, in creation order to keep
    the earliest-bucket tie-break.  ``REPRO_FUSED_KERNELS=0`` routes
    every read through the reference index lookup instead.
    """
    if signature_length <= 0:
        raise ClusteringError("signature_length must be positive")
    backend = get_distance_backend(distance_backend)
    fused = fused_kernels_enabled()
    bucket_reads: dict[str, list[int]] = {}
    index = _SignatureIndex(max_signature_errors)
    created_signatures: list[str] = []
    route_memo: dict[str, tuple[str, int, int]] = {}

    for read_index, read in enumerate(reads):
        if len(read) < signature_start + signature_length:
            continue
        signature = _signature(read, signature_start, signature_length)
        if signature not in bucket_reads:
            # Route to the nearest existing bucket if the signature is a
            # slightly corrupted version of one we have seen (candidates
            # from the deletion index, verified through the backend; ties
            # go to the earliest-created bucket).
            routed: str | None = None
            memo = route_memo.get(signature) if fused else None
            if memo is not None:
                target, distance, version = memo
                if distance > 1:
                    for newer in created_signatures[version:]:
                        closer = levenshtein_distance(
                            signature, newer, upper_bound=distance - 1
                        )
                        if closer < distance:
                            target, distance = newer, closer
                            if distance <= 1:
                                break
                    route_memo[signature] = (
                        target, distance, len(created_signatures)
                    )
                routed = target
            else:
                candidates = index.candidates(signature)
                found = backend.nearest(
                    signature, candidates, max_signature_errors
                )
                if found is not None:
                    routed = candidates[found[0]]
                    if fused:
                        route_memo[signature] = (
                            routed, found[1], len(created_signatures)
                        )
            if routed is not None:
                signature = routed
            else:
                bucket_reads[signature] = []
                index.add(signature)
                created_signatures.append(signature)
        bucket_reads[signature].append(read_index)
    return RoutedReads(bucket_reads=bucket_reads)


def _agglomerate(
    reads: Sequence[str],
    bucket_reads: dict[str, list[int]],
    *,
    max_read_distance: int,
    min_kmer_similarity: float,
    backend: DistanceBackend,
) -> dict[str, list[ReadCluster]]:
    """Phase 2 — greedy agglomeration around representatives.

    Buckets are independent and each bucket contributes a chunk of
    consecutive reads per round, so all (read, representative)
    comparisons of a round go through one batched backend call.  Clusters
    born *inside* a round only affect later reads of the same bucket's
    chunk; those few extra comparisons run in the sequential fix-up
    below, which keeps the result bit-identical to a fully sequential
    pass.

    The k-mer prefilter has two byte-identical implementations: the
    reference walks an inverted index (k-mer → positions of the
    representatives containing it) per bucket; the fused path stores
    every k-mer set as a bitmask (one shared bit numbering for the whole
    call) and evaluates the same Jaccard test with a word-parallel
    AND+popcount per representative, which is an order of magnitude
    cheaper than set intersections.
    """
    fused = fused_kernels_enabled()
    read_kmers: dict[int, frozenset[str]] = {}
    read_masks: dict[int, int] = {}
    kmer_bits: dict[str, int] = {}
    for members in bucket_reads.values():
        for read_index in members:
            if fused:
                read_masks[read_index] = _kmer_mask(
                    reads[read_index], _KMER_SIZE, kmer_bits
                )
            else:
                read_kmers[read_index] = kmer_set(reads[read_index], _KMER_SIZE)

    buckets: dict[str, list[ReadCluster]] = {key: [] for key in bucket_reads}
    rep_kmer_sizes: dict[str, list[int]] = {key: [] for key in buckets}
    rep_kmer_sets: dict[str, list[frozenset[str]]] = {key: [] for key in buckets}
    rep_masks: dict[str, list[int]] = {key: [] for key in buckets}
    rep_kmer_index: dict[str, dict[str, list[int]]] = {}
    empty_kmer_reps: dict[str, list[int]] = {key: [] for key in buckets}
    cursors = {key: 0 for key in buckets}
    chunk_sizes = {key: _CHUNK_START for key in buckets}
    pending = list(buckets)

    def start_cluster(key: str, read_index: int) -> None:
        position = len(buckets[key])
        buckets[key].append(ReadCluster(signature=key, reads=[reads[read_index]]))
        if fused:
            mask = read_masks[read_index]
            size = mask.bit_count()
            rep_masks[key].append(mask)
        else:
            kmers = read_kmers[read_index]
            size = len(kmers)
            rep_kmer_sets[key].append(kmers)
            index_for_key = rep_kmer_index.get(key)
            if index_for_key is not None:
                for kmer in kmers:
                    index_for_key.setdefault(kmer, []).append(position)
        rep_kmer_sizes[key].append(size)
        if not size:
            empty_kmer_reps[key].append(position)

    def kmer_index_for(key: str) -> dict[str, list[int]]:
        """The bucket's inverted k-mer index, built on first demand."""
        index_for_key = rep_kmer_index.get(key)
        if index_for_key is None:
            index_for_key = {}
            for position, kmers in enumerate(rep_kmer_sets[key]):
                for kmer in kmers:
                    index_for_key.setdefault(kmer, []).append(position)
            rep_kmer_index[key] = index_for_key
        return index_for_key

    def passing_positions(key: str, read_index: int, lo: int, hi: int) -> list[int]:
        """Representative positions in ``[lo, hi)`` passing the k-mer
        prefilter, ascending — exactly the Jaccard test."""
        if min_kmer_similarity <= 0.0:
            return list(range(lo, hi))
        sizes = rep_kmer_sizes[key]
        if fused:
            mine_mask = read_masks[read_index]
            mine_size = mine_mask.bit_count()
            if not mine_size:
                # An empty k-mer set matches only other empty sets
                # (Jaccard 1).
                if 1.0 >= min_kmer_similarity:
                    return [p for p in empty_kmer_reps[key] if lo <= p < hi]
                return []
            masks = rep_masks[key]
            return [
                position
                for position in range(lo, hi)
                if (shared := (mine_mask & masks[position]).bit_count())
                and shared / (mine_size + sizes[position] - shared)
                >= min_kmer_similarity
            ]
        mine = read_kmers[read_index]
        if not mine:
            if 1.0 >= min_kmer_similarity:
                return [p for p in empty_kmer_reps[key] if lo <= p < hi]
            return []
        mine_size = len(mine)
        counts: dict[int, int] = {}
        index_for_key = kmer_index_for(key)
        for kmer in mine:
            for position in index_for_key.get(kmer, ()):
                counts[position] = counts.get(position, 0) + 1
        passing = [
            position
            for position, shared in counts.items()
            if lo <= position < hi
            and shared / (mine_size + sizes[position] - shared)
            >= min_kmer_similarity
        ]
        passing.sort()
        return passing

    # Seed every bucket with its first read's cluster — that is exactly
    # what the greedy pass would do (an empty bucket has no representative
    # to match), and it guarantees the first batched round already has a
    # representative to compare against instead of falling back to the
    # sequential fix-up for a whole chunk.
    for key, members in bucket_reads.items():
        if members:
            start_cluster(key, members[0])
            cursors[key] = 1
    pending = [key for key in pending if cursors[key] < len(bucket_reads[key])]

    while pending:
        queries: list[str] = []
        candidate_lists: list[list[str]] = []
        metadata: list[tuple[str, int, list[int], int]] = []
        still_pending: list[str] = []
        for key in pending:
            members = bucket_reads[key]
            cursor = cursors[key]
            chunk = members[cursor : cursor + chunk_sizes[key]]
            cursors[key] = cursor + len(chunk)
            if cursors[key] < len(members):
                still_pending.append(key)
            clusters = buckets[key]
            snapshot = len(clusters)
            for read_index in chunk:
                passing = passing_positions(key, read_index, 0, snapshot)
                queries.append(reads[read_index])
                candidate_lists.append(
                    [clusters[position].representative for position in passing]
                )
                metadata.append((key, read_index, passing, snapshot))
        matches = backend.first_within_batch(
            queries, candidate_lists, max_read_distance
        )
        grew: dict[str, bool] = {}
        for (key, read_index, passing, snapshot), match in zip(metadata, matches):
            clusters = buckets[key]
            if match is not None:
                clusters[passing[match]].reads.append(reads[read_index])
                continue
            # No pre-round representative matched; try clusters created by
            # earlier reads of this same round before starting a new one.
            # Candidate lists here are tiny (clusters born within one
            # chunk), so the scalar banded comparison with its per-pair
            # early exit beats any batching.
            placed = False
            for position in passing_positions(
                key, read_index, snapshot, len(clusters)
            ):
                distance = levenshtein_distance(
                    reads[read_index],
                    clusters[position].representative,
                    upper_bound=max_read_distance,
                )
                if distance <= max_read_distance:
                    clusters[position].reads.append(reads[read_index])
                    placed = True
                    break
            if not placed:
                start_cluster(key, read_index)
                grew[key] = True
        for key in pending:  # every pending bucket took a chunk this round
            if grew.get(key):
                chunk_sizes[key] = max(_CHUNK_MIN, chunk_sizes[key] // 2)
            else:
                chunk_sizes[key] = min(_CHUNK_MAX, chunk_sizes[key] * 2)
        pending = still_pending

    return buckets


@dataclass(frozen=True)
class ClusterShard:
    """One shard of a clustering workload (phase-2 input).

    Attributes:
        shard: the shard index (``shard_of_signature`` of every bucket).
        reads: the shard's member reads, grouped contiguously per bucket.
        buckets: ``(signature, member_count)`` per bucket, in global
            bucket-creation order restricted to this shard.
    """

    shard: int
    reads: list[str]
    buckets: list[tuple[str, int]]


def build_shard_payloads(
    reads: Sequence[str],
    bucket_reads: dict[str, list[int]],
    shards: int,
) -> list[ClusterShard]:
    """Partition routed buckets onto ``shards`` deterministic shards.

    Buckets — never individual reads — are the sharding unit: phase-2
    agglomeration is independent per bucket, so *any* bucket partition
    reproduces the serial clusters exactly, and hashing the bucket
    signature keeps the assignment stable across processes and runs.
    Corrupted-signature reads were already routed to their home bucket by
    the SymSpell deletion-neighborhood index, so they follow that
    bucket's shard no matter where their corrupted signature itself would
    have hashed.  Empty shards are dropped.
    """
    grouped: list[list[tuple[str, list[int]]]] = [[] for _ in range(shards)]
    for signature, members in bucket_reads.items():
        grouped[shard_of_signature(signature, shards)].append(
            (signature, members)
        )
    payloads: list[ClusterShard] = []
    for shard_index, entries in enumerate(grouped):
        if not entries:
            continue
        flat: list[str] = []
        sizes: list[tuple[str, int]] = []
        for signature, members in entries:
            sizes.append((signature, len(members)))
            flat.extend(reads[read_index] for read_index in members)
        payloads.append(
            ClusterShard(shard=shard_index, reads=flat, buckets=sizes)
        )
    return payloads


def cluster_shard(
    reads: list[str],
    buckets: list[tuple[str, int]],
    *,
    max_read_distance: int = DEFAULT_MAX_READ_DISTANCE,
    min_kmer_similarity: float = DEFAULT_MIN_KMER_SIMILARITY,
    distance_backend: str | DistanceBackend | None = None,
) -> list[tuple[str, list[list[str]]]]:
    """Agglomerate one clustering shard (pure function, worker-safe).

    ``reads`` holds the shard's member reads grouped contiguously per
    bucket and ``buckets`` lists ``(signature, member_count)`` in bucket
    creation order — exactly a :class:`ClusterShard`'s fields.  Returns
    ``(signature, clusters as read lists)`` per bucket, builtin types
    only, so payload and result cross the decode-worker pickle boundary
    without custom classes.
    """
    backend = get_distance_backend(distance_backend)
    bucket_reads: dict[str, list[int]] = {}
    offset = 0
    for signature, count in buckets:
        bucket_reads[signature] = list(range(offset, offset + count))
        offset += count
    if offset != len(reads):
        raise ClusteringError(
            f"shard buckets cover {offset} reads, payload has {len(reads)}"
        )
    agglomerated = _agglomerate(
        reads,
        bucket_reads,
        max_read_distance=max_read_distance,
        min_kmer_similarity=min_kmer_similarity,
        backend=backend,
    )
    return [
        (signature, [list(cluster.reads) for cluster in clusters])
        for signature, clusters in agglomerated.items()
    ]


def merge_shard_clusters(
    routed: RoutedReads,
    shard_outputs: Iterable[list[tuple[str, list[list[str]]]]],
) -> list[ReadCluster]:
    """Deterministic cross-shard reconciliation.

    Shard outputs are reassembled in **global bucket-creation order**
    (the routing pass's key order), then the serial path's final stable
    size sort is applied — which makes the merged result byte-identical
    to the unsharded run at any shard count.

    No representative-vs-representative comparisons are needed here:
    routing guarantees every pair of bucket signatures is more than
    ``max_signature_errors`` apart (a closer signature would have been
    routed into the existing bucket instead of creating a new one), so
    no two shards can ever hold mergeable buckets and reconciliation
    reduces to exact order restoration.
    """
    by_signature: dict[str, list[list[str]]] = {}
    for output in shard_outputs:
        for signature, groups in output:
            by_signature[signature] = groups
    clusters: list[ReadCluster] = []
    for signature in routed.bucket_reads:
        groups = by_signature.get(signature)
        if groups is None:
            raise ClusteringError(
                f"shard outputs are missing bucket {signature!r}"
            )
        clusters.extend(
            ReadCluster(signature=signature, reads=list(group))
            for group in groups
        )
    clusters.sort(key=lambda cluster: cluster.size, reverse=True)
    return clusters


def cluster_reads(
    reads: list[str],
    *,
    signature_start: int,
    signature_length: int,
    max_signature_errors: int = DEFAULT_MAX_SIGNATURE_ERRORS,
    max_read_distance: int = DEFAULT_MAX_READ_DISTANCE,
    min_kmer_similarity: float = DEFAULT_MIN_KMER_SIMILARITY,
    distance_backend: str | DistanceBackend | None = None,
    shards: int | None = None,
) -> list[ReadCluster]:
    """Cluster reads into per-strand groups.

    Args:
        reads: the read strings (already primer-filtered if desired).
        signature_start: offset of the address region within a clean read.
        signature_length: length of the address region.
        max_signature_errors: how far (edit distance) a read's signature may
            be from a bucket's signature to be routed into that bucket.
        max_read_distance: maximum edit distance between a read and a
            cluster representative for membership; reads farther than this
            from every representative in their bucket start a new cluster
            (this is what separates misprimed payloads that share the
            target's address from the target's own reads).
        min_kmer_similarity: cheap k-mer prefilter threshold applied before
            computing edit distance against a representative.
        distance_backend: ``"python"``, ``"numpy"``, ``"auto"``/None (the
            ``REPRO_DISTANCE_BACKEND`` environment variable, then
            autodetection) or a backend instance.  Both backends produce
            identical clusters.
        shards: clustering shard count (``None`` =
            ``REPRO_CLUSTER_SHARDS``, then 1).  Any value produces
            byte-identical clusters; values above 1 agglomerate the
            signature shards independently — inline here, or on the
            decode-engine pool when the staged engine drives the same
            primitives.

    Returns:
        Clusters sorted by decreasing size (the order in which the decoder
        consumes them, per Section 8).
    """
    backend = get_distance_backend(distance_backend)
    shard_count = resolve_cluster_shards(shards)
    routed = route_reads(
        reads,
        signature_start=signature_start,
        signature_length=signature_length,
        max_signature_errors=max_signature_errors,
        distance_backend=backend,
    )
    if shard_count > 1:
        payloads = build_shard_payloads(reads, routed.bucket_reads, shard_count)
        outputs = [
            cluster_shard(
                payload.reads,
                payload.buckets,
                max_read_distance=max_read_distance,
                min_kmer_similarity=min_kmer_similarity,
                distance_backend=backend,
            )
            for payload in payloads
        ]
        return merge_shard_clusters(routed, outputs)
    buckets = _agglomerate(
        reads,
        routed.bucket_reads,
        max_read_distance=max_read_distance,
        min_kmer_similarity=min_kmer_similarity,
        backend=backend,
    )
    clusters = [cluster for bucket in buckets.values() for cluster in bucket]
    clusters.sort(key=lambda cluster: cluster.size, reverse=True)
    return clusters
