"""Exception hierarchy for the DNA block-storage library.

Every error raised by the library derives from :class:`DnaStorageError`,
so callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class DnaStorageError(Exception):
    """Base class for all errors raised by this library."""


class EncodingError(DnaStorageError):
    """Raised when binary data cannot be encoded into DNA."""


class DecodingError(DnaStorageError):
    """Raised when DNA reads cannot be decoded back into binary data."""


class SequenceError(DnaStorageError):
    """Raised for malformed DNA sequences (bad alphabet, bad length...)."""


class PrimerDesignError(DnaStorageError):
    """Raised when a primer or primer library cannot satisfy its constraints."""


class IndexTreeError(DnaStorageError):
    """Raised for invalid index-tree construction or address lookups."""


class AddressError(DnaStorageError):
    """Raised when a block address is out of range or malformed."""


class PartitionError(DnaStorageError):
    """Raised for invalid partition-level operations."""


class UpdateError(DnaStorageError):
    """Raised when an update patch is malformed or cannot be applied."""


class CapacityError(DnaStorageError):
    """Raised when data does not fit in the configured address space."""


class WetlabError(DnaStorageError):
    """Raised by the wetlab channel simulator for invalid protocols."""


class PCRError(WetlabError):
    """Raised when a simulated PCR reaction is configured incorrectly."""


class SequencingError(WetlabError):
    """Raised when a simulated sequencing run is configured incorrectly."""


class MixingError(WetlabError):
    """Raised when a pool-mixing protocol is configured incorrectly."""


class ReedSolomonError(DnaStorageError):
    """Raised when Reed-Solomon decoding fails (too many errors/erasures)."""


class ClusteringError(DnaStorageError):
    """Raised when read clustering cannot be performed."""


class ReconstructionError(DnaStorageError):
    """Raised when trace reconstruction cannot produce a consensus strand."""


class StoreError(DnaStorageError):
    """Raised by the volume / object-store layer (repro.store)."""


class ServiceError(DnaStorageError):
    """Raised by the multi-tenant serving layer (repro.service)."""


class ObservabilityError(DnaStorageError):
    """Raised by the tracing/metrics subsystem (repro.observability)."""


class ConfigError(DnaStorageError):
    """Raised for invalid runtime configuration (repro.envflags)."""


class LintError(DnaStorageError):
    """Raised by the static-analysis pass (repro.analysis.lint)."""
