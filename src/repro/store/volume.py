"""The DNA volume: striped block allocation across partitions.

A :class:`DnaVolume` sits between the named-object store and the
:class:`repro.core.pool_manager.DnaPoolManager`.  It owns a growing set of
partitions (each behind its own primer pair allocated from the manager's
library) and hands out :class:`Extent` runs for new objects, striping
consecutive stripes round-robin across partitions:

* striping bounds the per-partition molecule count (keeping index trees
  and PCR products small) and lets a batched retrieval amplify several
  partitions in parallel;
* allocation is append-only per partition — DNA is immutable, so deleted
  objects surrender their catalog entry but their block addresses are
  never reused (a reused address would collide with the old strands still
  in the pool).

The volume is also **snapshotable** (see :mod:`repro.store.snapshots`):
:meth:`DnaVolume.snapshot` captures a refcounted copy-on-write view.
While a snapshot is live, an update targeting a captured block is
redirected to a freshly allocated block (the snapshot keeps the old one),
:meth:`DnaVolume.release` defers reclamation of captured blocks until the
last referencing snapshot is released, and :meth:`DnaVolume.restore`
rewinds the allocation frontier to the capture point, dropping only
blocks no live snapshot still references.  Every written block carries a
*birth epoch* that cached decoded payloads are keyed by, so views from
different store generations can never alias in a block cache.

All digital I/O against the allocated blocks (write, reference read,
block-granular update patches) also lives here; the object-level catalog
is :class:`repro.store.object_store.ObjectStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codec.matrix_unit import UnitLayout
from repro.codec.molecule import Molecule, MoleculeLayout
from repro.core.addressing import BlockAddress
from repro.core.partition import Partition
from repro.core.pool_manager import DnaPoolManager
from repro.core.updates import diff_as_patch
from repro.exceptions import StoreError
from repro.store.objects import Extent, ObjectRecord
from repro.store.snapshots import VolumeSnapshot


@dataclass(frozen=True)
class VolumeConfig:
    """Static configuration of a volume.

    Attributes:
        partition_leaf_count: blocks per partition (index-tree leaves).
        stripe_blocks: blocks per stripe before rotating to the next
            partition.
        stripe_width: number of partitions a large object is spread over
            before a partition is revisited.
        slots_per_block: version slots per block (1 original + updates).
        unit_layout: geometry of one encoding unit.
        molecule_layout: geometry of one DNA strand.
        partition_prefix: prefix used when naming partitions.
    """

    partition_leaf_count: int = 256
    stripe_blocks: int = 16
    stripe_width: int = 4
    slots_per_block: int = 4
    unit_layout: UnitLayout = field(default_factory=UnitLayout)
    molecule_layout: MoleculeLayout = field(default_factory=MoleculeLayout)
    partition_prefix: str = "vol"

    def __post_init__(self) -> None:
        if self.partition_leaf_count <= 0:
            raise StoreError("partition_leaf_count must be positive")
        if self.stripe_blocks <= 0:
            raise StoreError("stripe_blocks must be positive")
        if self.stripe_width <= 0:
            raise StoreError("stripe_width must be positive")
        if self.stripe_blocks > self.partition_leaf_count:
            raise StoreError("stripe_blocks cannot exceed partition_leaf_count")


class DnaVolume:
    """Striped block allocation and digital block I/O over a pool manager."""

    def __init__(
        self,
        pool: DnaPoolManager | None = None,
        *,
        config: VolumeConfig | None = None,
    ) -> None:
        self.pool = pool if pool is not None else DnaPoolManager()
        self.config = config or VolumeConfig()
        #: Next unwritten block per partition (append-only allocation).
        self._next_block: dict[str, int] = {}
        #: Round-robin cursor over the volume's partitions.
        self._cursor = 0
        #: Blocks surrendered by deleted objects (lifetime counter).
        self.retired_blocks = 0
        #: Retired blocks whose digital record was actually dropped
        #: (immediately, or deferred until the last snapshot released).
        self.reclaimed_blocks = 0
        #: Blocks copy-on-write-redirected because a live snapshot
        #: referenced the original (lifetime counter).
        self.cow_blocks = 0
        #: Store generation, bumped by snapshot() and restore(); newly
        #: written blocks are stamped with it (their *birth epoch*).
        self._epoch = 0
        #: Birth epoch per written block (missing entries mean epoch 0).
        self._block_epoch: dict[tuple[str, int], int] = {}
        #: Live snapshots by id.
        self._snapshots: dict[int, VolumeSnapshot] = {}
        #: Live-snapshot references per captured block.
        self._refcounts: dict[tuple[str, int], int] = {}
        #: Blocks released from the live catalog but still referenced by
        #: a snapshot — readable through it, reclaimed when it releases.
        self._deferred: dict[tuple[str, int], None] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """User-visible bytes per block."""
        return self.config.unit_layout.user_data_bytes

    @property
    def partition_names(self) -> list[str]:
        """Partitions created by this volume, in creation order."""
        return list(self._next_block)

    @property
    def strands_per_block_slot(self) -> int:
        """DNA strands synthesized per written block version slot.

        One block slot is one encoding unit — its data and ECC columns
        each become one strand — so a synthesis order for ``n`` new block
        slots (originals or update patches) manufactures
        ``n * strands_per_block_slot`` distinct molecules.
        """
        return self.config.unit_layout.total_molecules

    @property
    def strand_nucleotides(self) -> int:
        """Bases per synthesized strand (primers, indexes and payload)."""
        return self.config.molecule_layout.strand_length

    def synthesis_footprint(self, block_slots: int) -> tuple[int, int]:
        """(strands, nucleotides) a synthesis order for block slots costs.

        Used by the serving pipeline to charge queued writes synthesis
        work the way reads are charged PCR reactions and sequencing reads.
        """
        if block_slots < 0:
            raise StoreError("block_slots must be non-negative")
        strands = block_slots * self.strands_per_block_slot
        return strands, strands * self.strand_nucleotides

    def partition(self, name: str) -> Partition:
        """The partition registered under ``name``."""
        return self.pool.partition(name)

    def free_blocks(self, name: str) -> int:
        """Unallocated blocks remaining in one partition.

        Raises:
            StoreError: if the partition is not part of this volume.
        """
        try:
            allocated = self._next_block[name]
        except KeyError as exc:
            raise StoreError(f"unknown partition {name!r}") from exc
        return self.config.partition_leaf_count - allocated

    def allocated_blocks(self) -> int:
        """Blocks handed out across all partitions."""
        return sum(self._next_block.values())

    def block_epoch(self, name: str, block: int) -> int:
        """Birth epoch of one written block (cache-key component).

        A block keeps its birth epoch for as long as it exists; after a
        :meth:`restore`, a fresh block written at the same address gets
        the new generation's epoch, so decoded-block caches keyed by
        ``(partition, block, epoch)`` can never serve bytes from a
        previous store generation.
        """
        return self._block_epoch.get((name, block), 0)

    @property
    def epoch(self) -> int:
        """Current store generation (bumped by snapshot and restore)."""
        return self._epoch

    def live_snapshots(self) -> list[VolumeSnapshot]:
        """Snapshots not yet released, oldest first."""
        return [self._snapshots[key] for key in sorted(self._snapshots)]

    def deferred_block_count(self) -> int:
        """Released blocks still pinned by a live snapshot."""
        return len(self._deferred)

    def is_deferred(self, name: str, block: int) -> bool:
        """Whether one released block is awaiting snapshot release."""
        return (name, block) in self._deferred

    def snapshot_references(self, name: str, block: int) -> int:
        """Live snapshots referencing one block."""
        return self._refcounts.get((name, block), 0)

    # ------------------------------------------------------------------
    # Partition lifecycle
    # ------------------------------------------------------------------
    def _create_partition(self) -> str:
        name = f"{self.config.partition_prefix}-{len(self._next_block):03d}"
        if name in self.pool:
            # A partition created after a snapshot and emptied again by a
            # restore: re-adopt the existing (digitally empty) partition so
            # re-running the same workload reuses the same primers and
            # seeds deterministically.
            partition = self.pool.partition(name)
            if partition.block_count:
                raise StoreError(
                    f"partition {name!r} already exists in the pool and "
                    "holds data; it cannot be re-adopted by the volume"
                )
        else:
            self.pool.create_partition(
                name,
                leaf_count=self.config.partition_leaf_count,
                slots_per_block=self.config.slots_per_block,
                unit_layout=self.config.unit_layout,
                molecule_layout=self.config.molecule_layout,
            )
        self._next_block[name] = 0
        return name

    def _partition_with_space(self) -> str:
        """Next partition (round-robin) with at least one free block.

        The volume grows until it is ``stripe_width`` partitions wide, then
        rotates over them; further partitions are created only when every
        existing one is full.
        """
        names = self.partition_names
        if len(names) < self.config.stripe_width:
            return self._create_partition()
        for _ in range(len(names)):
            name = names[self._cursor % len(names)]
            self._cursor += 1
            if self.free_blocks(name) > 0:
                return name
        return self._create_partition()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, size: int) -> list[Extent]:
        """Allocate extents for ``size`` bytes, striped across partitions.

        Consecutive stripes of ``config.stripe_blocks`` blocks rotate
        round-robin over the volume's partitions; new partitions (with
        fresh primer pairs from the manager's library) are created on
        demand, so objects of any size fit.
        """
        if size <= 0:
            raise StoreError("cannot allocate zero bytes")
        blocks_needed = -(-size // self.block_size)
        extents: list[Extent] = []
        object_offset = 0
        while blocks_needed > 0:
            name = self._partition_with_space()
            start = self._next_block[name]
            count = min(blocks_needed, self.config.stripe_blocks, self.free_blocks(name))
            self._next_block[name] = start + count
            extents.append(
                Extent(
                    partition=name,
                    start_block=start,
                    block_count=count,
                    object_offset=object_offset,
                )
            )
            object_offset += count * self.block_size
            blocks_needed -= count
        return extents

    def _allocate_block(self) -> tuple[str, int]:
        """Allocate a single fresh block (copy-on-write redirection)."""
        name = self._partition_with_space()
        block = self._next_block[name]
        self._next_block[name] = block + 1
        return name, block

    def release(self, extents: list[Extent]) -> None:
        """Retire extents of a deleted object (addresses are never reused).

        A retired block still referenced by a live snapshot stays readable
        through it: reclamation of its digital record is *deferred* until
        the last referencing snapshot is released.  Unreferenced blocks
        are reclaimed immediately.

        Raises:
            StoreError: if a block was already released (double free) or
                never written — either would silently corrupt a
                snapshot's view or the reclamation accounting.
        """
        for extent in extents:
            partition = self.partition(extent.partition)
            for block in extent.blocks():
                key = (extent.partition, block)
                if key in self._deferred:
                    raise StoreError(
                        f"block {block} of partition {extent.partition!r} "
                        "was already released (reclamation pending on a "
                        "live snapshot); double free"
                    )
                if not partition.has_block(block):
                    raise StoreError(
                        f"block {block} of partition {extent.partition!r} "
                        "holds no data (already reclaimed or never "
                        "written); double free"
                    )
        for extent in extents:
            for block in extent.blocks():
                self._release_block((extent.partition, block))
        self.retired_blocks += sum(extent.block_count for extent in extents)

    def _release_block(self, key: tuple[str, int]) -> None:
        """Defer (snapshot-referenced) or immediately reclaim one block."""
        if self._refcounts.get(key, 0) > 0:
            self._deferred[key] = None
        else:
            self._reclaim(key)

    def _reclaim(self, key: tuple[str, int]) -> None:
        """Drop a block's digital record (no live reference remains)."""
        self.partition(key[0]).drop_block(key[1])
        self._block_epoch.pop(key, None)
        self.reclaimed_blocks += 1

    # ------------------------------------------------------------------
    # Snapshots (copy-on-write views)
    # ------------------------------------------------------------------
    def snapshot(self) -> VolumeSnapshot:
        """Capture a refcounted point-in-time view of the volume.

        The snapshot references every currently live block (released
        blocks pending reclamation are excluded) and records each block's
        update-patch chain length.  While it is live:

        * updates targeting captured blocks are copy-on-write-redirected
          to fresh blocks (:meth:`update_record`);
        * :meth:`release` defers reclamation of captured blocks;
        * :meth:`restore` can rewind the volume to this exact state.

        Capturing is O(written blocks) and copies no data.
        """
        self._epoch += 1
        captured: dict[str, dict[int, int]] = {}
        for name in self._next_block:
            partition = self.partition(name)
            blocks: dict[int, int] = {}
            for block in partition.written_blocks():
                if (name, block) in self._deferred:
                    continue
                blocks[block] = partition.update_count(block)
            captured[name] = blocks
            for block in blocks:
                key = (name, block)
                self._refcounts[key] = self._refcounts.get(key, 0) + 1
        snapshot = VolumeSnapshot(
            snapshot_id=self._epoch,
            captured=captured,
            frontier=dict(self._next_block),
            cursor=self._cursor,
            _volume=self,
        )
        self._snapshots[snapshot.snapshot_id] = snapshot
        return snapshot

    def release_snapshot(self, snapshot: VolumeSnapshot) -> int:
        """Release a snapshot, reclaiming blocks only it still protected.

        Returns:
            The number of deferred blocks reclaimed by this release.

        Raises:
            StoreError: if the snapshot was already released or belongs
                to another volume.
        """
        snapshot.require_live()
        if self._snapshots.get(snapshot.snapshot_id) is not snapshot:
            raise StoreError(
                f"snapshot {snapshot.snapshot_id} is not a live snapshot "
                "of this volume"
            )
        del self._snapshots[snapshot.snapshot_id]
        snapshot.released = True
        reclaimed = 0
        for name, blocks in snapshot.captured.items():
            for block in blocks:
                key = (name, block)
                remaining = self._refcounts.get(key, 0) - 1
                if remaining > 0:
                    self._refcounts[key] = remaining
                    continue
                self._refcounts.pop(key, None)
                if key in self._deferred:
                    del self._deferred[key]
                    self._reclaim(key)
                    reclaimed += 1
        return reclaimed

    def restore(self, snapshot: VolumeSnapshot) -> list[str]:
        """Rewind the volume to a live snapshot's captured state.

        The allocation frontier, round-robin cursor and per-partition
        contents return to the capture point: blocks allocated after the
        capture are dropped — unless a *newer* live snapshot references
        them, in which case they are deferred (and reclaimed when that
        snapshot releases) and the frontier stays above them.  Blocks the
        snapshot captured that were released afterwards become live
        again (the restored catalog references them).

        Address-reuse safety is preserved: rewound addresses are only
        ever rewritten once no snapshot can still read their old bytes,
        and the epoch bump gives rewritten addresses fresh cache keys.

        Returns:
            Names of partitions whose digital contents changed (their
            synthesized wetlab pools must be re-synthesized).

        Raises:
            StoreError: if the snapshot is released or foreign.
        """
        snapshot.require_live()
        if self._snapshots.get(snapshot.snapshot_id) is not snapshot:
            raise StoreError(
                f"snapshot {snapshot.snapshot_id} is not a live snapshot "
                "of this volume"
            )
        self._epoch += 1
        # Frontier floor per partition: nothing a newer live snapshot
        # references may be dropped or re-allocated.
        floor: dict[str, int] = {}
        for other in self._snapshots.values():
            if other is snapshot:
                continue
            for name, next_block in other.frontier.items():
                floor[name] = max(floor.get(name, 0), next_block)
        changed: list[str] = []
        for name in list(self._next_block):
            target = snapshot.frontier.get(name, 0)
            keep_until = max(target, floor.get(name, 0))
            current = self._next_block[name]
            partition = self.partition(name)
            touched = False
            for block in range(target, current):
                key = (name, block)
                if not partition.has_block(block):
                    continue
                if block < keep_until:
                    # Referenced by a newer live snapshot: orphaned from
                    # every catalog, readable through that snapshot, and
                    # reclaimed when it releases.
                    self._deferred.setdefault(key, None)
                else:
                    self._deferred.pop(key, None)
                    self._reclaim(key)
                    touched = True
            if touched:
                changed.append(name)
            if keep_until == 0 and name not in snapshot.frontier:
                # Partition born after the capture and emptied again: the
                # volume forgets it (the pool keeps the primer pair; a
                # re-run re-adopts it under the same name).
                del self._next_block[name]
            else:
                self._next_block[name] = keep_until
        # Captured blocks released after the capture are live again.
        for key in list(self._deferred):
            if snapshot.contains(*key):
                del self._deferred[key]
        self._cursor = snapshot.cursor
        return changed

    # ------------------------------------------------------------------
    # Digital block I/O
    # ------------------------------------------------------------------
    def write_extents(self, data: bytes, extents: list[Extent]) -> None:
        """Write object bytes into their allocated extents."""
        for extent in extents:
            partition = self.partition(extent.partition)
            chunk = data[
                extent.object_offset : extent.object_offset
                + extent.block_count * self.block_size
            ]
            partition.write(chunk, start_block=extent.start_block)
            if self._epoch:
                for block in extent.blocks():
                    self._block_epoch[(extent.partition, block)] = self._epoch

    def read_record(
        self,
        record: ObjectRecord,
        *,
        offset: int = 0,
        length: int | None = None,
        block_cache=None,
        at: VolumeSnapshot | None = None,
    ) -> bytes:
        """Digitally read an object byte range (reference path).

        Only the blocks overlapping the requested range are read and have
        their update-patch chains applied, so the cost scales with the
        request, not the object.  Store-level updates are size-preserving,
        so every non-final block contributes exactly ``block_size`` bytes.

        Args:
            block_cache: optional decoded-block cache (anything with
                ``get(partition, block, epoch)`` /
                ``put(partition, block, data, epoch)``, e.g.
                :class:`repro.service.DecodedBlockCache`); cached blocks
                skip the partition read, missing blocks are inserted
                after decoding.  The epoch is the block's birth epoch, so
                entries from different store generations never alias —
                and a time-travel read of an unchanged block shares the
                live read's cache entry.
            at: optional live snapshot; ``record`` must then be that
                snapshot's catalog record, and each block applies only
                the patch-chain prefix the snapshot captured.
        """
        if at is not None:
            at.require_live()
        if length is None:
            length = record.size - offset
        if offset < 0 or length < 0 or offset + length > record.size:
            raise StoreError(
                f"range [{offset}, {offset + length}) outside object of "
                f"{record.size} bytes"
            )
        if length == 0:
            return b""
        first_block = offset // self.block_size
        last_block = (offset + length - 1) // self.block_size
        pieces: list[bytes] = []
        for extent, partition_block, _ in record.blocks_in_range(
            first_block, last_block
        ):
            patch_limit = None
            if at is not None:
                patch_limit = at.patch_count(extent.partition, partition_block)
            data = None
            epoch = self._block_epoch.get((extent.partition, partition_block), 0)
            if block_cache is not None:
                data = block_cache.get(extent.partition, partition_block, epoch)
            if data is None:
                data = self.partition(extent.partition).read_block_reference(
                    partition_block, patch_limit=patch_limit
                )
                if block_cache is not None:
                    block_cache.put(extent.partition, partition_block, data, epoch)
            pieces.append(data)
        combined = b"".join(pieces)
        start = offset - first_block * self.block_size
        return combined[start : start + length]

    def update_record(
        self, record: ObjectRecord, offset: int, new_bytes: bytes
    ) -> list[tuple[str, int]]:
        """Apply an in-place byte-range update as block-granular patches.

        A touched block normally gets one minimal :class:`UpdatePatch`
        (logged in the block's next version slot; the original DNA is
        immutable).  When the block is referenced by a live snapshot,
        patching it in place would corrupt the snapshot's view, so the
        write is **copy-on-write redirected** instead: a fresh block is
        allocated, the spliced contents are written there as a new
        original, and the record's extent map is remapped — the snapshot
        keeps the old block (now pending reclamation with it).

        The operation is all-or-nothing on the record's visible bytes:
        every in-place patch is computed and validated against its
        block's remaining version slots before anything is applied, and
        redirected blocks are written before any extent is remapped, so a
        failure never leaves the object half-updated (or burns slots on a
        retry).

        Returns:
            The written blocks as ``(partition name, block)`` pairs —
            patched blocks under their existing key (exactly the cache
            keys to invalidate), redirected blocks under their fresh key
            (nothing stale to invalidate; the key names the synthesis
            work).  Unchanged blocks are skipped.

        Raises:
            StoreError: if the range leaves the object, or a touched block
                has no free update slot / cannot hold the patch.
        """
        if not new_bytes:
            return []
        if offset < 0 or offset + len(new_bytes) > record.size:
            raise StoreError(
                f"update range [{offset}, {offset + len(new_bytes)}) outside "
                f"object of {record.size} bytes"
            )
        first_block = offset // self.block_size
        last_block = (offset + len(new_bytes) - 1) // self.block_size
        planned: list[tuple[Partition, str, int]] = []
        patches = []
        redirects: list[tuple[int, bytes]] = []  # (block offset, new bytes)
        for extent, partition_block, block_offset in record.blocks_in_range(
            first_block, last_block
        ):
            partition = self.partition(extent.partition)
            old = partition.read_block_reference(partition_block)
            # Splice the overlapping byte range into this block's bytes.
            lo = max(offset, block_offset)
            hi = min(offset + len(new_bytes), block_offset + len(old))
            if lo >= hi:
                continue
            new = (
                old[: lo - block_offset]
                + new_bytes[lo - offset : hi - offset]
                + old[hi - block_offset :]
            )
            if new == old:
                continue
            if self._refcounts.get((extent.partition, partition_block), 0) > 0:
                # Shared with a live snapshot: redirect, don't patch.
                redirects.append((block_offset, new))
                continue
            patch = diff_as_patch(old, new)
            slots = partition.config.slots_per_block
            if partition.update_count(partition_block) + 1 >= slots:
                raise StoreError(
                    f"block {partition_block} of partition {extent.partition!r} "
                    f"has no free update slot (limit {slots - 1}); "
                    "no patch of this update was applied"
                )
            if patch.framed_size_bytes > self.block_size:
                raise StoreError(
                    f"patch of {patch.framed_size_bytes} bytes for block "
                    f"{partition_block} exceeds the block size; "
                    "no patch of this update was applied"
                )
            planned.append((partition, extent.partition, partition_block))
            patches.append(patch)
        # Write every redirected block before remapping anything: an
        # allocation failure here leaves the record untouched — and the
        # blocks already written for this batch are dropped again, so a
        # failed update can never leak record-less blocks that every
        # future snapshot would capture as live.
        written: list[tuple[int, str, int]] = []
        try:
            for block_offset, new in redirects:
                name, block = self._allocate_block()
                self.partition(name).write_block(block, new)
                self._block_epoch[(name, block)] = self._epoch
                written.append((block_offset, name, block))
        except Exception:
            for _, name, block in written:
                self.partition(name).drop_block(block)
                self._block_epoch.pop((name, block), None)
            raise
        touched: list[tuple[str, int]] = []
        for block_offset, name, block in written:
            old_key = record.remap_block(block_offset, name, block)
            # The live catalog no longer references the old block; it
            # survives exactly as long as a snapshot does.
            self._release_block(old_key)
            self.cow_blocks += 1
            touched.append((name, block))
        for (partition, name, partition_block), patch in zip(planned, patches):
            partition.update_block(partition_block, patch)
            touched.append((name, partition_block))
        return touched

    # ------------------------------------------------------------------
    # Synthesis support
    # ------------------------------------------------------------------
    def molecules_for_record(
        self, record: ObjectRecord, *, include_updates: bool = True
    ) -> dict[str, list[Molecule]]:
        """Build the object's molecules, grouped by partition.

        Each partition's units go through one batched codec pass.
        """
        addresses: dict[str, list[BlockAddress]] = {}
        for extent in record.extents:
            partition = self.partition(extent.partition)
            bucket = addresses.setdefault(extent.partition, [])
            for block in extent.blocks():
                bucket.append(BlockAddress(block=block, slot=0))
                if include_updates:
                    for version in range(1, partition.update_count(block) + 1):
                        bucket.append(BlockAddress(block=block, slot=version))
        return {
            name: self.partition(name).molecules_for_addresses(address_list)
            for name, address_list in addresses.items()
        }
