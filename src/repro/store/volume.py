"""The DNA volume: striped block allocation across partitions.

A :class:`DnaVolume` sits between the named-object store and the
:class:`repro.core.pool_manager.DnaPoolManager`.  It owns a growing set of
partitions (each behind its own primer pair allocated from the manager's
library) and hands out :class:`Extent` runs for new objects, striping
consecutive stripes round-robin across partitions:

* striping bounds the per-partition molecule count (keeping index trees
  and PCR products small) and lets a batched retrieval amplify several
  partitions in parallel;
* allocation is append-only per partition — DNA is immutable, so deleted
  objects surrender their catalog entry but their block addresses are
  never reused (a reused address would collide with the old strands still
  in the pool).

All digital I/O against the allocated blocks (write, reference read,
block-granular update patches) also lives here; the object-level catalog
is :class:`repro.store.object_store.ObjectStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codec.matrix_unit import UnitLayout
from repro.codec.molecule import Molecule, MoleculeLayout
from repro.core.addressing import BlockAddress
from repro.core.partition import Partition
from repro.core.pool_manager import DnaPoolManager
from repro.core.updates import diff_as_patch
from repro.exceptions import StoreError
from repro.store.objects import Extent, ObjectRecord


@dataclass(frozen=True)
class VolumeConfig:
    """Static configuration of a volume.

    Attributes:
        partition_leaf_count: blocks per partition (index-tree leaves).
        stripe_blocks: blocks per stripe before rotating to the next
            partition.
        stripe_width: number of partitions a large object is spread over
            before a partition is revisited.
        slots_per_block: version slots per block (1 original + updates).
        unit_layout: geometry of one encoding unit.
        molecule_layout: geometry of one DNA strand.
        partition_prefix: prefix used when naming partitions.
    """

    partition_leaf_count: int = 256
    stripe_blocks: int = 16
    stripe_width: int = 4
    slots_per_block: int = 4
    unit_layout: UnitLayout = field(default_factory=UnitLayout)
    molecule_layout: MoleculeLayout = field(default_factory=MoleculeLayout)
    partition_prefix: str = "vol"

    def __post_init__(self) -> None:
        if self.partition_leaf_count <= 0:
            raise StoreError("partition_leaf_count must be positive")
        if self.stripe_blocks <= 0:
            raise StoreError("stripe_blocks must be positive")
        if self.stripe_width <= 0:
            raise StoreError("stripe_width must be positive")
        if self.stripe_blocks > self.partition_leaf_count:
            raise StoreError("stripe_blocks cannot exceed partition_leaf_count")


class DnaVolume:
    """Striped block allocation and digital block I/O over a pool manager."""

    def __init__(
        self,
        pool: DnaPoolManager | None = None,
        *,
        config: VolumeConfig | None = None,
    ) -> None:
        self.pool = pool if pool is not None else DnaPoolManager()
        self.config = config or VolumeConfig()
        #: Next unwritten block per partition (append-only allocation).
        self._next_block: dict[str, int] = {}
        #: Round-robin cursor over the volume's partitions.
        self._cursor = 0
        #: Blocks surrendered by deleted objects (never reused).
        self.retired_blocks = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        """User-visible bytes per block."""
        return self.config.unit_layout.user_data_bytes

    @property
    def partition_names(self) -> list[str]:
        """Partitions created by this volume, in creation order."""
        return list(self._next_block)

    @property
    def strands_per_block_slot(self) -> int:
        """DNA strands synthesized per written block version slot.

        One block slot is one encoding unit — its data and ECC columns
        each become one strand — so a synthesis order for ``n`` new block
        slots (originals or update patches) manufactures
        ``n * strands_per_block_slot`` distinct molecules.
        """
        return self.config.unit_layout.total_molecules

    @property
    def strand_nucleotides(self) -> int:
        """Bases per synthesized strand (primers, indexes and payload)."""
        return self.config.molecule_layout.strand_length

    def synthesis_footprint(self, block_slots: int) -> tuple[int, int]:
        """(strands, nucleotides) a synthesis order for block slots costs.

        Used by the serving pipeline to charge queued writes synthesis
        work the way reads are charged PCR reactions and sequencing reads.
        """
        if block_slots < 0:
            raise StoreError("block_slots must be non-negative")
        strands = block_slots * self.strands_per_block_slot
        return strands, strands * self.strand_nucleotides

    def partition(self, name: str) -> Partition:
        """The partition registered under ``name``."""
        return self.pool.partition(name)

    def free_blocks(self, name: str) -> int:
        """Unallocated blocks remaining in one partition.

        Raises:
            StoreError: if the partition is not part of this volume.
        """
        try:
            allocated = self._next_block[name]
        except KeyError as exc:
            raise StoreError(f"unknown partition {name!r}") from exc
        return self.config.partition_leaf_count - allocated

    def allocated_blocks(self) -> int:
        """Blocks handed out across all partitions."""
        return sum(self._next_block.values())

    # ------------------------------------------------------------------
    # Partition lifecycle
    # ------------------------------------------------------------------
    def _create_partition(self) -> str:
        name = f"{self.config.partition_prefix}-{len(self._next_block):03d}"
        self.pool.create_partition(
            name,
            leaf_count=self.config.partition_leaf_count,
            slots_per_block=self.config.slots_per_block,
            unit_layout=self.config.unit_layout,
            molecule_layout=self.config.molecule_layout,
        )
        self._next_block[name] = 0
        return name

    def _partition_with_space(self) -> str:
        """Next partition (round-robin) with at least one free block.

        The volume grows until it is ``stripe_width`` partitions wide, then
        rotates over them; further partitions are created only when every
        existing one is full.
        """
        names = self.partition_names
        if len(names) < self.config.stripe_width:
            return self._create_partition()
        for _ in range(len(names)):
            name = names[self._cursor % len(names)]
            self._cursor += 1
            if self.free_blocks(name) > 0:
                return name
        return self._create_partition()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, size: int) -> list[Extent]:
        """Allocate extents for ``size`` bytes, striped across partitions.

        Consecutive stripes of ``config.stripe_blocks`` blocks rotate
        round-robin over the volume's partitions; new partitions (with
        fresh primer pairs from the manager's library) are created on
        demand, so objects of any size fit.
        """
        if size <= 0:
            raise StoreError("cannot allocate zero bytes")
        blocks_needed = -(-size // self.block_size)
        extents: list[Extent] = []
        object_offset = 0
        while blocks_needed > 0:
            name = self._partition_with_space()
            start = self._next_block[name]
            count = min(blocks_needed, self.config.stripe_blocks, self.free_blocks(name))
            self._next_block[name] = start + count
            extents.append(
                Extent(
                    partition=name,
                    start_block=start,
                    block_count=count,
                    object_offset=object_offset,
                )
            )
            object_offset += count * self.block_size
            blocks_needed -= count
        return extents

    def release(self, extents: list[Extent]) -> None:
        """Retire extents of a deleted object (addresses are never reused)."""
        self.retired_blocks += sum(extent.block_count for extent in extents)

    # ------------------------------------------------------------------
    # Digital block I/O
    # ------------------------------------------------------------------
    def write_extents(self, data: bytes, extents: list[Extent]) -> None:
        """Write object bytes into their allocated extents."""
        for extent in extents:
            partition = self.partition(extent.partition)
            chunk = data[
                extent.object_offset : extent.object_offset
                + extent.block_count * self.block_size
            ]
            partition.write(chunk, start_block=extent.start_block)

    def read_record(
        self,
        record: ObjectRecord,
        *,
        offset: int = 0,
        length: int | None = None,
        block_cache=None,
    ) -> bytes:
        """Digitally read an object byte range (reference path).

        Only the blocks overlapping the requested range are read and have
        their update-patch chains applied, so the cost scales with the
        request, not the object.  Store-level updates are size-preserving,
        so every non-final block contributes exactly ``block_size`` bytes.

        Args:
            block_cache: optional decoded-block cache (anything with
                ``get(partition, block)`` / ``put(partition, block, data)``,
                e.g. :class:`repro.service.DecodedBlockCache`); cached
                blocks skip the partition read, missing blocks are
                inserted after decoding.
        """
        if length is None:
            length = record.size - offset
        if offset < 0 or length < 0 or offset + length > record.size:
            raise StoreError(
                f"range [{offset}, {offset + length}) outside object of "
                f"{record.size} bytes"
            )
        if length == 0:
            return b""
        first_block = offset // self.block_size
        last_block = (offset + length - 1) // self.block_size
        pieces: list[bytes] = []
        for extent, partition_block, _ in record.blocks_in_range(
            first_block, last_block
        ):
            data = None
            if block_cache is not None:
                data = block_cache.get(extent.partition, partition_block)
            if data is None:
                data = self.partition(extent.partition).read_block_reference(
                    partition_block
                )
                if block_cache is not None:
                    block_cache.put(extent.partition, partition_block, data)
            pieces.append(data)
        combined = b"".join(pieces)
        start = offset - first_block * self.block_size
        return combined[start : start + length]

    def update_record(
        self, record: ObjectRecord, offset: int, new_bytes: bytes
    ) -> list[tuple[str, int]]:
        """Apply an in-place byte-range update as block-granular patches.

        Every touched block gets one minimal :class:`UpdatePatch` (logged
        in the block's next version slot; the original DNA is immutable).
        The operation is all-or-nothing: every patch is computed and
        validated against its block's remaining version slots before any
        is applied, so a failure never leaves the object half-updated (or
        burns slots on a retry).

        Returns:
            The patched blocks as ``(partition name, block)`` pairs
            (unchanged blocks are skipped) — exactly the cache keys a
            decoded-block cache must invalidate.

        Raises:
            StoreError: if the range leaves the object, or a touched block
                has no free update slot / cannot hold the patch.
        """
        if not new_bytes:
            return []
        if offset < 0 or offset + len(new_bytes) > record.size:
            raise StoreError(
                f"update range [{offset}, {offset + len(new_bytes)}) outside "
                f"object of {record.size} bytes"
            )
        first_block = offset // self.block_size
        last_block = (offset + len(new_bytes) - 1) // self.block_size
        planned: list[tuple[Partition, str, int]] = []
        patches = []
        for extent, partition_block, block_offset in record.blocks_in_range(
            first_block, last_block
        ):
            partition = self.partition(extent.partition)
            old = partition.read_block_reference(partition_block)
            # Splice the overlapping byte range into this block's bytes.
            lo = max(offset, block_offset)
            hi = min(offset + len(new_bytes), block_offset + len(old))
            if lo >= hi:
                continue
            new = (
                old[: lo - block_offset]
                + new_bytes[lo - offset : hi - offset]
                + old[hi - block_offset :]
            )
            if new == old:
                continue
            patch = diff_as_patch(old, new)
            slots = partition.config.slots_per_block
            if partition.update_count(partition_block) + 1 >= slots:
                raise StoreError(
                    f"block {partition_block} of partition {extent.partition!r} "
                    f"has no free update slot (limit {slots - 1}); "
                    "no patch of this update was applied"
                )
            if patch.framed_size_bytes > self.block_size:
                raise StoreError(
                    f"patch of {patch.framed_size_bytes} bytes for block "
                    f"{partition_block} exceeds the block size; "
                    "no patch of this update was applied"
                )
            planned.append((partition, extent.partition, partition_block))
            patches.append(patch)
        for (partition, _, partition_block), patch in zip(planned, patches):
            partition.update_block(partition_block, patch)
        return [(name, block) for _, name, block in planned]

    # ------------------------------------------------------------------
    # Synthesis support
    # ------------------------------------------------------------------
    def molecules_for_record(
        self, record: ObjectRecord, *, include_updates: bool = True
    ) -> dict[str, list[Molecule]]:
        """Build the object's molecules, grouped by partition.

        Each partition's units go through one batched codec pass.
        """
        addresses: dict[str, list[BlockAddress]] = {}
        for extent in record.extents:
            partition = self.partition(extent.partition)
            bucket = addresses.setdefault(extent.partition, [])
            for block in extent.blocks():
                bucket.append(BlockAddress(block=block, slot=0))
                if include_updates:
                    for version in range(1, partition.update_count(block) + 1):
                        bucket.append(BlockAddress(block=block, slot=version))
        return {
            name: self.partition(name).molecules_for_addresses(address_list)
            for name, address_list in addresses.items()
        }
