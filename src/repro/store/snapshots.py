"""Copy-on-write snapshots of the volume layer.

A snapshot is a refcounted, immutable point-in-time view of a store:
:meth:`repro.store.volume.DnaVolume.snapshot` captures which blocks exist
(and how long each block's update-patch chain is), and
:meth:`repro.store.object_store.ObjectStore.snapshot` pairs that with a
copy of the object catalog.  DNA pools are naturally copy-on-write —
synthesized strands are immutable and addresses are never rewritten — so
a snapshot never copies data:

* writes after a snapshot allocate *fresh* blocks instead of mutating
  captured ones (an update whose block is referenced by a live snapshot
  is redirected to a newly allocated block; see
  :meth:`DnaVolume.update_record`);
* deleting an object whose blocks a live snapshot references *defers*
  their reclamation — the snapshot keeps reading them — and the blocks
  are reclaimed only when the last referencing snapshot is released;
* restoring a snapshot rewinds the catalog and the allocation frontier,
  dropping only blocks no live snapshot references.

Snapshots are what let one seed store serve every policy run of
:meth:`repro.service.ServicePipeline.compare` and what back the serving
layer's time-travel reads (``ServiceRequest(op="read", as_of=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.exceptions import StoreError
from repro.store.objects import ObjectRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.volume import DnaVolume


@dataclass
class VolumeSnapshot:
    """An immutable point-in-time view of a :class:`DnaVolume`.

    The snapshot holds no block data: it records which blocks existed at
    capture time and the length of each block's update-patch chain, and
    the volume's copy-on-write rules guarantee that captured state is
    never mutated while the snapshot is live.

    Attributes:
        snapshot_id: the volume epoch at capture (unique, monotonic).
        captured: per-partition mapping ``block -> patch-chain length``
            at capture time.
        frontier: per-partition allocation frontier (``next free block``)
            at capture time.
        cursor: the volume's round-robin allocation cursor at capture.
        released: True once :meth:`release` ran; a released snapshot can
            no longer be read or restored.
    """

    snapshot_id: int
    captured: dict[str, dict[int, int]]
    frontier: dict[str, int]
    cursor: int
    released: bool = False
    _volume: "DnaVolume | None" = field(default=None, repr=False)

    @property
    def epoch(self) -> int:
        """Alias of :attr:`snapshot_id` (the capture epoch)."""
        return self.snapshot_id

    @property
    def block_count(self) -> int:
        """Blocks referenced by this snapshot."""
        return sum(len(blocks) for blocks in self.captured.values())

    def require_live(self) -> None:
        """Raise if the snapshot has been released (use-after-free guard)."""
        if self.released:
            raise StoreError(
                f"snapshot {self.snapshot_id} has been released; "
                "its view is no longer readable"
            )

    def contains(self, partition: str, block: int) -> bool:
        """Whether the snapshot references one block."""
        return block in self.captured.get(partition, ())

    def patch_count(self, partition: str, block: int) -> int:
        """Update-patch chain length of a captured block at capture time.

        Raises:
            StoreError: if the snapshot is released or does not reference
                the block.
        """
        self.require_live()
        try:
            return self.captured[partition][block]
        except KeyError as exc:
            raise StoreError(
                f"snapshot {self.snapshot_id} does not reference block "
                f"{block} of partition {partition!r}"
            ) from exc

    def release(self) -> int:
        """Release the snapshot, reclaiming blocks only it still protected.

        Returns:
            The number of deferred blocks this release reclaimed.

        Raises:
            StoreError: if the snapshot was already released.
        """
        if self._volume is None:
            raise StoreError("snapshot is not bound to a volume")
        return self._volume.release_snapshot(self)


@dataclass
class StoreSnapshot:
    """A point-in-time view of an :class:`ObjectStore`: catalog + volume.

    Attributes:
        volume: the underlying :class:`VolumeSnapshot`.
        catalog: the object catalog at capture time (records are copies;
            the live store's later mutations never show through).
    """

    volume: VolumeSnapshot
    catalog: dict[str, ObjectRecord]

    @property
    def epoch(self) -> int:
        """The capture epoch (shared with the volume snapshot)."""
        return self.volume.snapshot_id

    @property
    def released(self) -> bool:
        """Whether the underlying volume snapshot has been released."""
        return self.volume.released

    def __contains__(self, name: str) -> bool:
        return name in self.catalog

    def names(self) -> list[str]:
        """Object names captured by the snapshot, in insertion order."""
        return list(self.catalog)

    def record(self, name: str) -> ObjectRecord:
        """The captured catalog record of one object.

        Raises:
            StoreError: if the snapshot is released or never held the
                object.
        """
        self.volume.require_live()
        try:
            return self.catalog[name]
        except KeyError as exc:
            raise StoreError(
                f"object {name!r} does not exist in snapshot "
                f"{self.volume.snapshot_id}"
            ) from exc

    def release(self) -> int:
        """Release the underlying volume snapshot."""
        return self.volume.release()
