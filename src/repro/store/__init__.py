"""repro.store — the volume layer above the partition substrate.

The paper's architecture ends at the partition: a blocked address space
behind one primer pair.  This package adds the multi-partition storage
abstractions a production front-end needs:

* :mod:`repro.store.objects` — object records and extents (the striping
  metadata).
* :mod:`repro.store.volume` — :class:`DnaVolume`: striped, append-only
  block allocation across partitions created on demand from the primer
  library, plus digital block I/O and block-granular update patching.
* :mod:`repro.store.planner` — the batched read planner: merged
  per-partition prefix-cover PCR accesses for an object or byte range.
* :mod:`repro.store.snapshots` — copy-on-write snapshots:
  :class:`VolumeSnapshot` / :class:`StoreSnapshot` point-in-time views
  with deferred reclamation, restore, and time-travel reads.
* :mod:`repro.store.object_store` — :class:`ObjectStore`: named-object
  put/get/update/delete, and full-pipeline decoding from sequencing reads.

Everything here runs on the batched codec engine
(:mod:`repro.codec.backend`) and works with or without numpy.
"""

from repro.store.object_store import ObjectStore
from repro.store.objects import Extent, ObjectRecord
from repro.store.snapshots import StoreSnapshot, VolumeSnapshot
from repro.store.planner import (
    BatchReadPlan,
    PcrAccess,
    block_ranges_for_read,
    merge_partition_ranges,
    plan_object_read,
    plan_partition_ranges,
)
from repro.store.volume import DnaVolume, VolumeConfig

__all__ = [
    "BatchReadPlan",
    "DnaVolume",
    "Extent",
    "ObjectRecord",
    "ObjectStore",
    "PcrAccess",
    "StoreSnapshot",
    "VolumeConfig",
    "VolumeSnapshot",
    "block_ranges_for_read",
    "merge_partition_ranges",
    "plan_object_read",
    "plan_partition_ranges",
]
