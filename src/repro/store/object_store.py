"""Named-object storage on top of a :class:`DnaVolume`.

The :class:`ObjectStore` is the user-facing API of the volume layer:
``put`` stripes an object of any size across partitions, ``get`` reads it
back (reference path), ``update`` logs block-granular patches against the
immutable original DNA, and ``delete`` drops the catalog entry (retiring
— never reusing — the underlying block addresses).

Two retrieval paths exist:

* :meth:`ObjectStore.get` — the digital reference read used by tests and
  benchmarks (originals plus patch chains, no wetlab round trip);
* :meth:`ObjectStore.decode_object` — the full pipeline: per-partition
  sequencing reads are clustered, reconstructed and Reed-Solomon decoded
  through :class:`repro.pipeline.decoder.BlockDecoder`, block by block,
  with updates applied in slot order.

:meth:`ObjectStore.read_plan` exposes the batched prefix-cover planner so
callers can run the minimal set of PCR reactions for an object (or byte
range) before sequencing.

The store is **snapshotable**: :meth:`ObjectStore.snapshot` captures a
copy-on-write :class:`repro.store.snapshots.StoreSnapshot` (catalog plus
volume view), :meth:`ObjectStore.restore` rewinds the store to one, and
``get`` / ``block_ranges`` / ``read_plan`` accept ``at=snapshot`` for
time-travel reads of historical object versions.
"""

from __future__ import annotations

from repro.exceptions import StoreError
from repro.pipeline.parallel import DecodeTask, shared_engine
from repro.store.objects import ObjectRecord
from repro.store.planner import (
    BatchReadPlan,
    block_ranges_for_read,
    plan_object_read,
)
from repro.store.snapshots import StoreSnapshot
from repro.store.volume import DnaVolume


#: Sentinel distinguishing "no block_cache argument" (use the attached
#: cache) from an explicit ``block_cache=None`` (bypass any cache).
_ATTACHED = object()


class ObjectStore:
    """A named put/get/update/delete API over striped DNA partitions."""

    def __init__(self, volume: DnaVolume | None = None) -> None:
        self.volume = volume if volume is not None else DnaVolume()
        self._catalog: dict[str, ObjectRecord] = {}
        #: Optional decoded-block cache consulted by ``get`` and kept
        #: coherent by ``update``/``delete`` (see ``attach_cache``).
        self.block_cache = None

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._catalog

    def __len__(self) -> int:
        return len(self._catalog)

    def names(self) -> list[str]:
        """Stored object names, in insertion order."""
        return list(self._catalog)

    def record(self, name: str, *, at: StoreSnapshot | None = None) -> ObjectRecord:
        """The catalog record of one object (live, or as of a snapshot)."""
        if at is not None:
            return at.record(name)
        try:
            return self._catalog[name]
        except KeyError as exc:
            raise StoreError(f"unknown object {name!r}") from exc

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> StoreSnapshot:
        """Capture a copy-on-write point-in-time view of the store.

        The snapshot pairs a copy of the object catalog with a refcounted
        :class:`repro.store.snapshots.VolumeSnapshot`; no block data is
        copied.  While it is live, writes copy-on-write around it,
        deletes defer block reclamation, ``get(name, at=snapshot)`` reads
        historical versions, and :meth:`restore` rewinds to it.  Release
        it (``snapshot.release()``) when the view is no longer needed so
        deferred blocks can be reclaimed.
        """
        return StoreSnapshot(
            volume=self.volume.snapshot(),
            catalog={name: record.clone() for name, record in self._catalog.items()},
        )

    def restore(self, snapshot: StoreSnapshot) -> list[str]:
        """Rewind the store to a live snapshot's captured state.

        The catalog and the volume's allocation frontier return to the
        capture point (see :meth:`repro.store.volume.DnaVolume.restore`);
        the snapshot stays live, so it can be restored repeatedly — the
        backbone of :meth:`repro.service.ServicePipeline.compare`, which
        serves every policy run from one restored seed store.

        Returns:
            Names of partitions whose digital contents changed (callers
            holding synthesized wetlab pools must re-synthesize exactly
            those).
        """
        changed = self.volume.restore(snapshot.volume)
        self._catalog = {
            name: record.clone() for name, record in snapshot.catalog.items()
        }
        return changed

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------
    def put(self, name: str, data: bytes) -> ObjectRecord:
        """Store a new object, striping it across the volume's partitions.

        Raises:
            StoreError: if the name is taken or the object is empty.
        """
        if name in self._catalog:
            raise StoreError(f"object {name!r} already exists")
        if not data:
            raise StoreError("cannot store an empty object")
        extents = self.volume.allocate(len(data))
        self.volume.write_extents(data, extents)
        record = ObjectRecord(
            name=name,
            size=len(data),
            block_size=self.volume.block_size,
            extents=extents,
        )
        self._catalog[name] = record
        return record

    def attach_cache(self, cache) -> None:
        """Attach a decoded-block cache to the read path.

        ``cache`` is anything with ``get``/``put``/``invalidate`` keyed by
        ``(partition name, block)`` — in practice a
        :class:`repro.service.DecodedBlockCache`.  Once attached, ``get``
        serves hot blocks without touching the partition (no wetlab work),
        and ``update``/``delete`` invalidate stale entries.
        """
        self.block_cache = cache

    def get(
        self,
        name: str,
        *,
        offset: int = 0,
        length: int | None = None,
        block_cache=_ATTACHED,
        at: StoreSnapshot | None = None,
    ) -> bytes:
        """Read an object (or byte range) with all updates applied.

        Args:
            block_cache: decoded-block cache to consult/fill for this read.
                Omitted, it defaults to the cache attached via
                :meth:`attach_cache`; pass ``None`` explicitly to bypass
                any attached cache.
            at: optional live snapshot — a *time-travel read*: the object
                is resolved against the snapshot's catalog and each block
                applies only the update chain captured then.  Blocks
                unchanged since the capture share the live read path's
                cache entries (their birth epoch is the cache key).
        """
        record = self.record(name, at=at)
        cache = self.block_cache if block_cache is _ATTACHED else block_cache
        return self.volume.read_record(
            record,
            offset=offset,
            length=length,
            block_cache=cache,
            at=None if at is None else at.volume,
        )

    def update(self, name: str, offset: int, new_bytes: bytes) -> int:
        """Overwrite a byte range in place via block-granular patches.

        The object's size is unchanged; every touched block logs one
        minimal update patch in its next version slot (Section 5 of the
        paper) and is invalidated from the attached block cache.  Returns
        the number of blocks patched.
        """
        return len(self.update_blocks(name, offset, new_bytes))

    def update_blocks(
        self, name: str, offset: int, new_bytes: bytes
    ) -> list[tuple[str, int]]:
        """Like :meth:`update`, returning the patched block keys.

        The serving pipeline uses the ``(partition, block)`` keys to size
        the write's synthesis order and to re-synthesize exactly the
        affected wetlab pools.
        """
        record = self.record(name)
        patched = self.volume.update_record(record, offset, new_bytes)
        if patched:
            record.version += 1
        if self.block_cache is not None:
            for partition_name, block in patched:
                self.block_cache.invalidate(
                    partition_name,
                    block,
                    self.volume.block_epoch(partition_name, block),
                )
        return patched

    def delete(self, name: str) -> ObjectRecord:
        """Drop an object from the catalog and retire its extents.

        The DNA strands are immutable, so the addresses are retired rather
        than reused; blocks a live snapshot references stay readable
        through it (their reclamation is deferred), the rest reclaim
        immediately.  Physical reclamation is the next pool re-synthesis.
        """
        record = self.record(name)
        # Capture cache epochs before the release reclaims any block.
        stale = [
            (extent.partition, block, self.volume.block_epoch(extent.partition, block))
            for extent in record.extents
            for block in extent.blocks()
        ]
        del self._catalog[name]
        self.volume.release(record.extents)
        if self.block_cache is not None:
            for partition_name, block, epoch in stale:
                self.block_cache.invalidate(partition_name, block, epoch)
        return record

    # ------------------------------------------------------------------
    # Batched retrieval
    # ------------------------------------------------------------------
    def read_plan(
        self,
        name: str,
        *,
        offset: int = 0,
        length: int | None = None,
        at: StoreSnapshot | None = None,
    ) -> BatchReadPlan:
        """The merged prefix-cover PCR plan for an object (or byte range).

        With ``at=snapshot`` the plan targets the snapshot's version of
        the object — its blocks are physical strands still in the pool,
        so a historical read costs ordinary PCR accesses (labelled with
        the snapshot epoch for diagnostics).
        """
        record = self.record(name, at=at)
        label = record.name if at is None else f"{record.name}@s{at.epoch}"
        return plan_object_read(
            self.volume, record, offset=offset, length=length, label=label
        )

    def block_ranges(
        self,
        name: str,
        *,
        offset: int = 0,
        length: int | None = None,
        at: StoreSnapshot | None = None,
    ) -> dict[str, list[tuple[int, int]]]:
        """Per-partition merged block ranges backing an object byte range.

        The addressing stage of :meth:`read_plan` without the primer
        synthesis — what the serving layer's batch scheduler merges across
        concurrent requests before planning one shared PCR cycle.  With
        ``at=snapshot`` the ranges address the snapshot's version; blocks
        unchanged since the capture carry the same keys as live reads, so
        historical and current requests dedupe into the same accesses.
        """
        return block_ranges_for_read(
            self.record(name, at=at), offset=offset, length=length
        )

    def decode_blocks(
        self,
        blocks_by_partition: dict[str, list[int]],
        reads_by_partition: dict[str, list[str]],
        *,
        workers: int | None = None,
        shared_memory: bool | None = None,
        cluster_shards: int | None = None,
        **decoder_options,
    ) -> dict[tuple[str, int], bytes]:
        """Decode exactly one set of blocks from per-partition reads.

        The range-granular counterpart of :meth:`decode_object`: the
        serving layer's batch scheduler plans block *ranges* spanning many
        objects, so the decode step must target precisely the planned block
        set — each partition's reads go through one clustering pass and one
        batched Reed-Solomon pass over only the requested blocks
        (:meth:`BlockDecoder.decode_readout`).

        Args:
            blocks_by_partition: partition-local block numbers to decode.
            reads_by_partition: raw read strings per partition name (e.g.
                the sequencing output of the plan's PCR accesses).
            workers: decode worker processes (``None`` =
                ``REPRO_DECODE_WORKERS``, then CPU count; ``1`` = serial).
            shared_memory: ship large read batches to the workers via
                shared memory (``None`` = ``REPRO_DECODE_SHM``).
            cluster_shards: intra-partition clustering shard count
                (``None`` = ``REPRO_CLUSTER_SHARDS``, then 1); results
                are byte-identical at any shard count.
            decoder_options: forwarded to :class:`BlockDecoder`.

        Returns:
            The decoded current contents (updates applied, trimmed to the
            block's true stored length) keyed by ``(partition, block)``.

        Raises:
            StoreError: if reads for a required partition are missing or a
                block cannot be decoded.
        """
        payloads, failures = self.try_decode_blocks(
            blocks_by_partition,
            reads_by_partition,
            workers=workers,
            shared_memory=shared_memory,
            cluster_shards=cluster_shards,
            **decoder_options,
        )
        if failures:
            raise StoreError(next(iter(failures.values())))
        return payloads

    def try_decode_blocks(
        self,
        blocks_by_partition: dict[str, list[int]],
        reads_by_partition: dict[str, list[str]],
        *,
        workers: int | None = None,
        shared_memory: bool | None = None,
        cluster_shards: int | None = None,
        **decoder_options,
    ) -> tuple[dict[tuple[str, int], bytes], dict[tuple[str, int], str]]:
        """Decode a block set, reporting per-block failures instead of raising.

        The serving pipeline's retry cycles need to know *which* blocks of
        a wetlab cycle failed (insufficient coverage, unclusterable reads)
        so only the affected requests re-enter a deeper-coverage cycle.

        Each partition's readout is one task of the process-parallel
        :class:`~repro.pipeline.parallel.DecodeEngine` (``workers`` /
        ``shared_memory`` as in :meth:`decode_blocks`); results are
        byte-identical for any worker count.

        Returns:
            ``(payloads, failures)``: decoded current contents keyed by
            ``(partition, block)``, and a human-readable failure reason
            per block that could not be decoded (missing partition reads
            fail every requested block of that partition).
        """
        targets_of: dict[str, list[int]] = {}
        tasks: list[DecodeTask] = []
        task_index_of: dict[str, int] = {}
        for partition_name, blocks in blocks_by_partition.items():
            if not blocks:
                continue
            targets_of[partition_name] = sorted(set(blocks))
            if partition_name not in reads_by_partition:
                continue
            task_index_of[partition_name] = len(tasks)
            tasks.append(
                DecodeTask(
                    partition=self.volume.partition(partition_name),
                    reads=reads_by_partition[partition_name],
                    blocks=targets_of[partition_name],
                    decoder_options=decoder_options,
                    label=partition_name,
                )
            )
        engine = shared_engine(
            workers=workers,
            shared_memory=shared_memory,
            cluster_shards=cluster_shards,
        )
        outcomes = engine.decode(tasks)

        payloads: dict[tuple[str, int], bytes] = {}
        failures: dict[tuple[str, int], str] = {}
        for partition_name, targets in targets_of.items():
            if partition_name not in task_index_of:
                for block in targets:
                    failures[(partition_name, block)] = (
                        f"no reads provided for partition {partition_name!r}"
                    )
                continue
            partition = self.volume.partition(partition_name)
            reports = outcomes[task_index_of[partition_name]].reports
            for block in targets:
                report = reports[block]
                if not report.success or report.data is None:
                    failures[(partition_name, block)] = (
                        f"failed to decode block {block} of partition "
                        f"{partition_name!r} ({report.reads_on_prefix} "
                        f"on-prefix reads, {report.clusters_total} clusters)"
                    )
                    continue
                # Updates are size-preserving, so the stored original's
                # length is the block's true current length; the decoded
                # unit is padded to the full block size.
                true_length = len(partition.original_block_data(block))
                payloads[(partition_name, block)] = report.data[:true_length]
        return payloads, failures

    def decode_object(
        self,
        name: str,
        reads_by_partition: dict[str, list[str]],
        *,
        workers: int | None = None,
        shared_memory: bool | None = None,
        cluster_shards: int | None = None,
        **decoder_options,
    ) -> bytes:
        """Decode an object from per-partition sequencing reads.

        Args:
            reads_by_partition: raw read strings per partition name (e.g.
                the sequencing output of the plan's PCR accesses).
            decoder_options: forwarded to :class:`BlockDecoder`.

        Returns:
            The object's bytes with all recovered updates applied.

        Raises:
            StoreError: if reads for a required partition are missing or a
                block cannot be decoded.
        """
        record = self.record(name)
        blocks_by_partition: dict[str, list[int]] = {}
        for extent, partition_block, _ in record.logical_blocks():
            blocks_by_partition.setdefault(extent.partition, []).append(
                partition_block
            )
        payloads = self.decode_blocks(
            blocks_by_partition,
            reads_by_partition,
            workers=workers,
            shared_memory=shared_memory,
            cluster_shards=cluster_shards,
            **decoder_options,
        )
        pieces = [
            payloads[(extent.partition, partition_block)]
            for extent, partition_block, _ in record.logical_blocks()
        ]
        return b"".join(pieces)[: record.size]
