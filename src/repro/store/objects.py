"""Object records and extents for the volume layer.

A stored object is described by an :class:`ObjectRecord`: its byte size
and an ordered list of :class:`Extent` — contiguous block runs inside
individual partitions.  Extents are the unit of striping: a large object
is cut into block-aligned stripes that land on different partitions, so a
batched retrieval can run one (multiplexed) PCR per partition instead of
sequencing a single huge partition end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import StoreError


@dataclass(frozen=True)
class Extent:
    """A contiguous run of blocks inside one partition.

    Attributes:
        partition: name of the partition holding the blocks.
        start_block: first block number of the run.
        block_count: number of consecutive blocks.
        object_offset: byte offset of this extent within the object.
    """

    partition: str
    start_block: int
    block_count: int
    object_offset: int

    def __post_init__(self) -> None:
        if self.start_block < 0 or self.object_offset < 0:
            raise StoreError("extent offsets must be non-negative")
        if self.block_count <= 0:
            raise StoreError("extent must cover at least one block")

    @property
    def end_block(self) -> int:
        """Last block number of the run (inclusive)."""
        return self.start_block + self.block_count - 1

    def blocks(self) -> range:
        """The block numbers covered by this extent."""
        return range(self.start_block, self.start_block + self.block_count)


@dataclass
class ObjectRecord:
    """Catalog entry for one named object.

    Attributes:
        name: the object's key in the store.
        size: logical object size in bytes.
        block_size: user bytes per block of the volume that allocated it.
        extents: the object's stripes, ordered by ``object_offset``.
        version: bumped once per applied update (informational).
    """

    name: str
    size: int
    block_size: int
    extents: list[Extent] = field(default_factory=list)
    version: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise StoreError("object size must be non-negative")
        if self.block_size <= 0:
            raise StoreError("block_size must be positive")

    def clone(self) -> "ObjectRecord":
        """An independent copy of the record (snapshot/restore support).

        Extents are immutable and shared; the extent *list* and the
        mutable fields are copied, so remaps and version bumps on one
        copy never show through to the other.
        """
        return ObjectRecord(
            name=self.name,
            size=self.size,
            block_size=self.block_size,
            extents=list(self.extents),
            version=self.version,
        )

    def remap_block(
        self, object_offset: int, new_partition: str, new_block: int
    ) -> tuple[str, int]:
        """Redirect one backing block to a freshly allocated block (CoW).

        The extent covering ``object_offset`` is split so that exactly the
        one block holding that offset now lives at ``new_block`` of
        ``new_partition``; the surrounding blocks keep their addresses.
        The volume uses this when an update targets a block a live
        snapshot references: the snapshot keeps the old block, the live
        object moves on to the fresh one.

        Returns:
            The ``(partition, block)`` key the offset previously mapped
            to (the block the snapshot retains).
        """
        extent, old_block = self.locate(object_offset)
        index = self.extents.index(extent)
        delta = (object_offset - extent.object_offset) // self.block_size
        pieces: list[Extent] = []
        if delta > 0:
            pieces.append(
                Extent(
                    partition=extent.partition,
                    start_block=extent.start_block,
                    block_count=delta,
                    object_offset=extent.object_offset,
                )
            )
        pieces.append(
            Extent(
                partition=new_partition,
                start_block=new_block,
                block_count=1,
                object_offset=extent.object_offset + delta * self.block_size,
            )
        )
        tail = extent.block_count - delta - 1
        if tail > 0:
            pieces.append(
                Extent(
                    partition=extent.partition,
                    start_block=extent.start_block + delta + 1,
                    block_count=tail,
                    object_offset=extent.object_offset
                    + (delta + 1) * self.block_size,
                )
            )
        self.extents[index : index + 1] = pieces
        return (extent.partition, old_block)

    @property
    def block_count(self) -> int:
        """Number of blocks backing the object."""
        return sum(extent.block_count for extent in self.extents)

    @property
    def partition_names(self) -> list[str]:
        """Distinct partitions backing the object, in extent order."""
        names: list[str] = []
        for extent in self.extents:
            if extent.partition not in names:
                names.append(extent.partition)
        return names

    def block_length(self, block_index: int) -> int:
        """True byte length of the ``block_index``-th logical block."""
        if not 0 <= block_index < self.block_count:
            raise StoreError(f"block index {block_index} out of range")
        if block_index < self.block_count - 1:
            return self.block_size
        remainder = self.size - block_index * self.block_size
        return remainder if remainder else self.block_size

    def locate(self, offset: int) -> tuple[Extent, int]:
        """Map a byte offset to ``(extent, block number within partition)``.

        Raises:
            StoreError: if the offset is outside the object.
        """
        if not 0 <= offset < max(self.size, 1):
            raise StoreError(
                f"offset {offset} outside object {self.name!r} of {self.size} bytes"
            )
        for extent in self.extents:
            extent_bytes = extent.block_count * self.block_size
            if extent.object_offset <= offset < extent.object_offset + extent_bytes:
                block_delta = (offset - extent.object_offset) // self.block_size
                return extent, extent.start_block + block_delta
        raise StoreError(f"offset {offset} is not covered by any extent")

    def logical_blocks(self) -> list[tuple[Extent, int, int]]:
        """Every backing block as ``(extent, partition block, object offset)``."""
        return list(self.blocks_in_range(0, max(self.block_count - 1, 0)))

    def blocks_in_range(self, first_logical: int, last_logical: int):
        """Backing blocks for a window of logical block indexes (inclusive).

        Extents outside the window are skipped arithmetically, so iterating
        a small byte range of a huge object costs O(extents + window), not
        O(blocks).  Yields ``(extent, partition block, object offset)``.
        """
        logical = 0
        for extent in self.extents:
            if logical > last_logical:
                break
            start = max(first_logical - logical, 0)
            end = min(last_logical - logical, extent.block_count - 1)
            for i in range(start, end + 1):
                yield (
                    extent,
                    extent.start_block + i,
                    extent.object_offset + i * self.block_size,
                )
            logical += extent.block_count
