"""Batched read planning: merged per-partition prefix-cover PCR accesses.

Reading an object back from DNA costs one PCR (or one multiplexed primer
set) per accessed partition range.  The planner turns an object's extents
— or an arbitrary byte range of them — into the cheapest set of accesses:

1. group the touched blocks by partition;
2. merge adjacent/overlapping block ranges within each partition (stripes
   of the same object frequently abut after round-robin wraps);
3. cover each merged range with the minimal set of index-tree prefixes
   (Section 3.1 of the paper), each prefix yielding one elongated primer.

The resulting :class:`BatchReadPlan` quantifies the wetlab work (primer
and reaction counts, amplified-vs-wanted blocks) and carries the concrete
:class:`ElongatedPrimer` objects for the PCR simulator.

The stages are also exposed separately so a serving layer can merge the
addressing of *many* concurrent requests before committing to primers:
:func:`block_ranges_for_read` maps one request to per-partition block
ranges, :func:`merge_partition_ranges` unions the range maps of a whole
batch (deduplicating overlap across tenants), and
:func:`plan_partition_ranges` turns the merged ranges into one shared
:class:`BatchReadPlan` (see :mod:`repro.service`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.elongation import ElongatedPrimer
from repro.core.prefix_cover import PrefixCover
from repro.exceptions import StoreError
from repro.store.objects import ObjectRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.volume import DnaVolume


@dataclass(frozen=True)
class PcrAccess:
    """One planned PCR access: a covered block range in one partition.

    Attributes:
        partition: the partition to amplify.
        start_block / end_block: covered block range (inclusive).
        primers: the multiplexed elongated forward primers of the access.
        cover: the prefix-cover analysis behind the primers.
    """

    partition: str
    start_block: int
    end_block: int
    primers: tuple[ElongatedPrimer, ...]
    cover: PrefixCover

    @property
    def block_count(self) -> int:
        """Blocks retrieved by this access."""
        return self.end_block - self.start_block + 1

    @property
    def primer_count(self) -> int:
        """Primers multiplexed into the reaction."""
        return len(self.primers)


@dataclass(frozen=True)
class BatchReadPlan:
    """The merged access plan for one object read."""

    object_name: str
    accesses: tuple[PcrAccess, ...]

    @property
    def reaction_count(self) -> int:
        """PCR reactions needed (one per partition range)."""
        return len(self.accesses)

    @property
    def primer_count(self) -> int:
        """Total elongated primers across all reactions."""
        return sum(access.primer_count for access in self.accesses)

    @property
    def block_count(self) -> int:
        """Total blocks amplified by the plan."""
        return sum(access.block_count for access in self.accesses)

    def partitions(self) -> list[str]:
        """Partitions touched by the plan, in access order."""
        names: list[str] = []
        for access in self.accesses:
            if access.partition not in names:
                names.append(access.partition)
        return names


def _merge_ranges(ranges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge overlapping or adjacent inclusive integer ranges."""
    merged: list[tuple[int, int]] = []
    for start, end in sorted(ranges):
        if merged and start <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def block_ranges_for_read(
    record: ObjectRecord,
    *,
    offset: int = 0,
    length: int | None = None,
) -> dict[str, list[tuple[int, int]]]:
    """Per-partition merged block ranges backing a byte range of an object.

    This is the plan's addressing stage without the primer synthesis: the
    scheduler uses it to deduplicate block ranges across concurrent
    requests before committing to PCR accesses.

    A zero-length read is a valid empty read everywhere in the store layer
    (mirroring ``ObjectStore.get(length=0) == b""``): it touches no blocks,
    so the plan is empty.

    Raises:
        StoreError: if the byte range leaves the object.
    """
    if length is None:
        length = record.size - offset
    if offset < 0 or length < 0 or offset + length > record.size:
        raise StoreError(
            f"range [{offset}, {offset + length}) outside object "
            f"{record.name!r} of {record.size} bytes"
        )
    if length == 0:
        return {}
    block_size = record.block_size
    first_logical = offset // block_size
    last_logical = (offset + length - 1) // block_size

    ranges_by_partition: dict[str, list[tuple[int, int]]] = {}
    for extent, partition_block, _ in record.blocks_in_range(
        first_logical, last_logical
    ):
        ranges_by_partition.setdefault(extent.partition, []).append(
            (partition_block, partition_block)
        )
    return {
        name: _merge_ranges(ranges)
        for name, ranges in ranges_by_partition.items()
    }


def ranges_from_block_keys(
    keys: "list[tuple[str, int]]",
) -> dict[str, list[tuple[int, int]]]:
    """Per-partition merged block ranges from flat ``(partition, block)`` keys.

    The serving pipeline's retry cycles target exactly the blocks that
    failed to decode; this turns that flat key set back into the merged
    per-partition ranges :func:`plan_partition_ranges` consumes.  Partition
    order follows first appearance, keeping retry plans deterministic.
    """
    by_partition: dict[str, list[tuple[int, int]]] = {}
    for partition_name, block in keys:
        by_partition.setdefault(partition_name, []).append((block, block))
    return {
        name: _merge_ranges(ranges) for name, ranges in by_partition.items()
    }


def merge_partition_ranges(
    range_maps: "list[dict[str, list[tuple[int, int]]]]",
) -> dict[str, list[tuple[int, int]]]:
    """Union per-partition range maps from many requests into one.

    Overlapping and adjacent ranges — including identical ranges issued by
    different tenants — collapse into single merged ranges, which is what
    lets one PCR cycle serve every concurrent request that touches the
    same hot blocks.  Partition order follows first appearance, keeping
    the merged plan deterministic.
    """
    combined: dict[str, list[tuple[int, int]]] = {}
    for range_map in range_maps:
        for partition_name, ranges in range_map.items():
            combined.setdefault(partition_name, []).extend(ranges)
    return {name: _merge_ranges(ranges) for name, ranges in combined.items()}


def plan_partition_ranges(
    volume: "DnaVolume",
    ranges_by_partition: dict[str, list[tuple[int, int]]],
    *,
    label: str = "batch",
) -> BatchReadPlan:
    """Build the PCR accesses covering pre-computed per-partition ranges.

    Args:
        volume: the volume holding the partitions.
        ranges_by_partition: inclusive block ranges per partition (merged
            or not; overlapping ranges are merged here).
        label: name recorded on the resulting plan.
    """
    accesses: list[PcrAccess] = []
    for partition_name, ranges in ranges_by_partition.items():
        partition = volume.partition(partition_name)
        for start, end in _merge_ranges(list(ranges)):
            cover = partition.prefix_cover(start, end)
            primers = tuple(partition.primers_for_range(start, end))
            accesses.append(
                PcrAccess(
                    partition=partition_name,
                    start_block=start,
                    end_block=end,
                    primers=primers,
                    cover=cover,
                )
            )
    return BatchReadPlan(object_name=label, accesses=tuple(accesses))


def plan_object_read(
    volume: "DnaVolume",
    record: ObjectRecord,
    *,
    offset: int = 0,
    length: int | None = None,
    label: str | None = None,
) -> BatchReadPlan:
    """Plan the PCR accesses that retrieve a byte range of an object.

    Args:
        volume: the volume holding the object's partitions.
        record: the object's catalog record — a live record or one from a
            :class:`repro.store.snapshots.StoreSnapshot` (snapshot blocks
            are physical strands still in the pool, so historical reads
            plan like any other access).
        offset / length: byte range to retrieve (defaults to the whole
            object).
        label: name recorded on the plan (defaults to the record's name;
            the store labels time-travel plans ``name@s<epoch>``).

    Raises:
        StoreError: if the byte range leaves the object.
    """
    ranges = block_ranges_for_read(record, offset=offset, length=length)
    return plan_partition_ranges(
        volume, ranges, label=record.name if label is None else label
    )
