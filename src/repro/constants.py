"""Shared constants for the DNA block-storage reproduction.

The values here mirror the wetlab configuration described in Section 6 of
the paper (150-base strands, 20-base primers, 4-bit Reed-Solomon symbols,
256-byte encoding units) and the physical constants of the DNA alphabet.
"""

from __future__ import annotations

#: The DNA alphabet, in the canonical order used throughout the paper's
#: prefix trees (edges of every node are labelled A, C, G, T in that order
#: before randomization).
DNA_ALPHABET: tuple[str, str, str, str] = ("A", "C", "G", "T")

#: Mapping from base to its index in :data:`DNA_ALPHABET`.
BASE_TO_INDEX: dict[str, int] = {base: i for i, base in enumerate(DNA_ALPHABET)}

#: Watson-Crick complement of each base.
COMPLEMENT: dict[str, str] = {"A": "T", "T": "A", "C": "G", "G": "C"}

#: Bases that contribute to GC content.
GC_BASES: frozenset[str] = frozenset({"G", "C"})

#: Bases that do not contribute to GC content.
AT_BASES: frozenset[str] = frozenset({"A", "T"})

#: Two-bit value of each base under the unconstrained 2-bits-per-base codec.
BASE_TO_BITS: dict[str, int] = {"A": 0, "C": 1, "G": 2, "T": 3}

#: Inverse of :data:`BASE_TO_BITS`.
BITS_TO_BASE: dict[int, str] = {v: k for k, v in BASE_TO_BITS.items()}

#: Total strand length used in the wetlab evaluation (Section 6.2).
DEFAULT_STRAND_LENGTH: int = 150

#: Length of each main access primer (forward and reverse).
DEFAULT_PRIMER_LENGTH: int = 20

#: Number of bases reserved for the pair of main primers.
DEFAULT_PRIMER_PAIR_BASES: int = 2 * DEFAULT_PRIMER_LENGTH

#: A single synchronization base is inserted after the forward primer
#: (Section 6.2), leaving 109 bases for index + payload on a 150-base strand.
SYNC_BASE: str = "A"

#: Payload bases per molecule in the wetlab configuration: 96 bases = 24 bytes.
DEFAULT_PAYLOAD_BASES: int = 96

#: Payload bytes per molecule (96 bases at 2 bits per base).
DEFAULT_PAYLOAD_BYTES: int = DEFAULT_PAYLOAD_BASES // 4

#: Sparse, PCR-compatible index length (bases) for the encoding-unit address.
DEFAULT_SPARSE_INDEX_BASES: int = 10

#: Dense index length that the sparse index replaces (5 bases address 1024
#: encoding units).
DEFAULT_DENSE_INDEX_BASES: int = 5

#: Extra base appended to the sparse index to distinguish the original block
#: from its update slots (Section 6.3).
DEFAULT_UPDATE_SLOT_BASES: int = 1

#: Bases used for intra-matrix addressing (the orange part of Figure 1):
#: two bases distinguish the 15 molecules of an encoding unit in software.
DEFAULT_INTRA_UNIT_INDEX_BASES: int = 2

#: Reed-Solomon symbol size in bits (Section 6.2 uses 4-bit symbols).
DEFAULT_RS_SYMBOL_BITS: int = 4

#: Codeword length for 4-bit symbols: 2**4 - 1 = 15 symbols.
DEFAULT_RS_CODEWORD_SYMBOLS: int = 15

#: Number of data molecules per encoding unit in the wetlab configuration.
DEFAULT_DATA_MOLECULES_PER_UNIT: int = 11

#: Number of ECC molecules per encoding unit in the wetlab configuration.
DEFAULT_ECC_MOLECULES_PER_UNIT: int = 4

#: Molecules per encoding unit (data + ECC).
DEFAULT_MOLECULES_PER_UNIT: int = (
    DEFAULT_DATA_MOLECULES_PER_UNIT + DEFAULT_ECC_MOLECULES_PER_UNIT
)

#: Usable data bytes in one encoding unit (256 B of user data + 8 B padding).
DEFAULT_UNIT_DATA_BYTES: int = 256

#: Gross bytes held by the data molecules of one encoding unit (264 B).
DEFAULT_UNIT_GROSS_BYTES: int = (
    DEFAULT_DATA_MOLECULES_PER_UNIT * DEFAULT_PAYLOAD_BYTES
)

#: Number of leaf indexes in the wetlab index tree (Section 4.1).
DEFAULT_LEAF_COUNT: int = 1024

#: Number of encoding units (blocks) in the Alice partition (Section 7.6).
ALICE_BLOCK_COUNT: int = 587

#: Total number of distinct strands in the synthesized Alice partition
#: (587 blocks x 15 strands, which the paper rounds to 8805).
ALICE_STRAND_COUNT: int = ALICE_BLOCK_COUNT * DEFAULT_MOLECULES_PER_UNIT

#: Number of files encoded in the paper's DNA pool (12 fillers + Alice).
DEFAULT_FILE_COUNT: int = 13

#: Blocks that received updates co-synthesized with the original Twist pool.
TWIST_UPDATED_BLOCKS: tuple[int, int, int] = (144, 307, 531)

#: Blocks that received updates synthesized later by IDT and mixed in.
IDT_UPDATED_BLOCKS: tuple[int, int, int] = (243, 374, 556)

#: Concentration mismatch between the IDT update pool and the Twist pool
#: before mixing (Section 6.4.1).
IDT_CONCENTRATION_RATIO: float = 50_000.0

#: Length of the elongated forward primers used in the wetlab (Section 6.5).
DEFAULT_ELONGATED_PRIMER_LENGTH: int = 31

#: Acceptable GC-content window for PCR primers (Section 6.5 reports 48-52%).
PRIMER_GC_MIN: float = 0.40
PRIMER_GC_MAX: float = 0.60

#: Maximum homopolymer run length allowed in a PCR primer.
PRIMER_MAX_HOMOPOLYMER: int = 3

#: Maximum homopolymer run produced by the sparse index construction
#: (Section 4.3 guarantees runs of at most two).
SPARSE_INDEX_MAX_HOMOPOLYMER: int = 2

#: Bytes of user data representable by one base under 2-bit encoding.
BITS_PER_BASE_UNCONSTRAINED: float = 2.0

#: Reads produced by one Illumina MiSeq run expressed as user gigabytes
#: (Section 7.4: "one run of Illumina MiSeq can only produce around 1GB").
MISEQ_RUN_OUTPUT_BYTES: int = 10 ** 9
