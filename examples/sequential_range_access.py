"""Sequential access: retrieving a contiguous range of blocks with few primers.

Section 3.1 of the paper observes that any contiguous block range maps to a
small set of index-tree prefixes, each usable as a primer elongation.  This
example stores a file across 200 blocks and compares three ways of reading
bytes 25 600 - 76 799 (blocks 100-299 of a 1024-block partition... scaled
down to blocks 40-95 here):

* whole-partition retrieval (the prior-work baseline),
* the single common-prefix primer (imprecise but one reaction),
* the exact multi-primer prefix cover (precise multiplexed reaction).

Run with ``python examples/sequential_range_access.py``.
"""

from repro import Partition, PartitionConfig, PrimerPair
from repro.workloads.text import alice_like_text

PAIR = PrimerPair("ATCGTGCAAGCTTGACCTGA", "CGTAGACTTGCAACTGGACT")


def main() -> None:
    partition = Partition(PartitionConfig(primers=PAIR, leaf_count=1024, tree_seed=9))
    partition.write(alice_like_text(200 * 256))

    start_block, end_block = 40, 95
    cover = partition.prefix_cover(start_block, end_block)
    primers = partition.primers_for_range(start_block, end_block)

    range_blocks = cover.range_size
    print(f"requested range: blocks {start_block}-{end_block} ({range_blocks} blocks)")

    print("\noption 1 — whole-partition retrieval (baseline):")
    print(f"  amplifies {partition.block_count} blocks; "
          f"{partition.block_count / range_blocks:.1f}x the requested data")

    print("\noption 2 — single common-prefix elongation (imprecise):")
    print(f"  prefix {cover.common_prefix_address!r} covers "
          f"{cover.common_prefix_leaf_count} blocks; "
          f"overshoot {cover.overshoot_ratio:.1f}x")

    print("\noption 3 — exact prefix cover (multiplexed precise PCR):")
    print(f"  {cover.primer_count} elongated primers cover exactly {range_blocks} blocks:")
    for primer in primers:
        scope = "1 block" if primer.is_full_elongation else f"subtree of {4 ** (partition.tree.depth - primer.levels)} blocks"
        print(f"    {primer.sequence}  ({primer.length} bases, {scope})")

    assert cover.primer_count < range_blocks
    assert cover.overshoot_ratio >= 1.0


if __name__ == "__main__":
    main()
