"""Full wetlab round trip: synthesize, amplify a single block, sequence, decode.

A 20-block partition is written, one block receives an update patch, the
pool is "synthesized" (with vendor skew), a touchdown PCR with the block's
elongated primer amplifies it, a few hundred noisy reads are sampled, and
the decoding pipeline (prefix filter -> clustering -> double-sided BMA ->
Reed-Solomon -> patch application) recovers the updated block contents.

Run with ``python examples/block_update_roundtrip.py``.
"""

from repro import (
    BlockDecoder,
    ErrorModel,
    Partition,
    PartitionConfig,
    PCRConfig,
    PCRSimulator,
    PrimerPair,
    Sequencer,
    SynthesisVendor,
    UpdatePatch,
    synthesize,
)
from repro.workloads.text import alice_like_text

PAIR = PrimerPair("ATCGTGCAAGCTTGACCTGA", "CGTAGACTTGCAACTGGACT")
TARGET_BLOCK = 7


def main() -> None:
    # --- digital front-end -------------------------------------------------
    partition = Partition(PartitionConfig(primers=PAIR, leaf_count=64, tree_seed=17))
    partition.write(alice_like_text(20 * 256))
    partition.update_block(
        TARGET_BLOCK,
        UpdatePatch(delete_start=5, delete_length=10, insert_position=5, insert_bytes=b"[patched]"),
    )
    expected = partition.read_block_reference(TARGET_BLOCK)

    # --- synthesis ----------------------------------------------------------
    molecules = partition.all_molecules()
    pool = synthesize(molecules, SynthesisVendor.twist(), seed=3)
    print(f"synthesized pool: {pool.distinct_species()} distinct strands, "
          f"skew {pool.skew():.2f}x")

    # --- precise access: touchdown PCR with the elongated primer ------------
    primer = partition.primer_for_block(TARGET_BLOCK)
    amplified = PCRSimulator(PCRConfig.touchdown()).amplify(
        pool, primer, PAIR.reverse, residual_forward_primer=PAIR.forward
    )
    print(f"amplified with {primer.length}-base elongated primer "
          f"(Tm {primer.melting_temperature:.1f}C)")

    # --- sequencing ----------------------------------------------------------
    reads = Sequencer(ErrorModel(), seed=5).sequence(amplified, 600).sequences()
    print(f"sequenced {len(reads)} reads")

    # --- decoding -------------------------------------------------------------
    report = BlockDecoder(partition).decode_block(reads, TARGET_BLOCK)
    print(f"decode success: {report.success}; "
          f"{report.reads_on_prefix} reads on prefix, "
          f"{report.clusters_total} clusters, "
          f"slots recovered {report.slots_recovered}")
    assert report.success
    assert report.data[: len(expected)] == expected
    print("updated block recovered exactly; excerpt:")
    print("  " + report.data[:70].decode("ascii", errors="replace"))


if __name__ == "__main__":
    main()
