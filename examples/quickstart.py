"""Quickstart: store a file as DNA blocks, update one block, plan a precise read.

Covers the digital side of the architecture end to end — no wetlab
simulation yet (see ``block_update_roundtrip.py`` for the full round trip):

1. create a partition behind one primer pair,
2. write a file across fixed-size blocks,
3. log an update patch against one block (versioned, not in-place),
4. build the elongated primer that would retrieve that block + its updates,
5. decode the block digitally and verify the patch is applied.

Run with ``python examples/quickstart.py``.
"""

from repro import Partition, PartitionConfig, PrimerPair, UpdatePatch


def main() -> None:
    pair = PrimerPair(
        forward="ATCGTGCAAGCTTGACCTGA",
        reverse="CGTAGACTTGCAACTGGACT",
    )
    partition = Partition(PartitionConfig(primers=pair, leaf_count=1024))

    document = (
        b"DNA block storage quickstart. " * 40
    )  # ~1.2 KB -> 5 blocks of 256 bytes
    blocks = partition.write(document)
    print(f"wrote {len(document)} bytes across blocks {blocks}")

    # Updates are logged as patches; the original DNA is never edited.
    patch = UpdatePatch(delete_start=0, delete_length=3, insert_position=0, insert_bytes=b"RNA?! No: DNA")
    address = partition.update_block(2, patch)
    print(f"logged update for block 2 in slot {address.slot}")

    # The synthesis order: every molecule that would be sent to a vendor.
    molecules = partition.all_molecules()
    print(f"partition synthesizes {len(molecules)} molecules of "
          f"{len(molecules[0].to_strand())} bases each")

    # Precise read planning: one elongated primer retrieves block 2 and its update.
    primer = partition.primer_for_block(2)
    print(f"elongated primer for block 2: {primer.sequence} "
          f"({primer.length} bases, GC {primer.gc_content:.0%}, "
          f"Tm {primer.melting_temperature:.1f}C)")

    # Digital decode (ground truth): original + patch applied in order.
    units = {}
    for molecule in partition.molecules_for_block(2):
        parsed = partition.parse_unit_index(molecule.unit_index)
        units.setdefault(parsed.slot, {})[molecule.intra_index] = molecule.payload
    decoded = partition.decode_block_from_units(units)
    assert decoded[: len(b"RNA?! No: DNA")] == b"RNA?! No: DNA"
    print("decoded block 2 with its update applied:")
    print("  " + decoded[:60].decode("ascii", errors="replace"))


if __name__ == "__main__":
    main()
