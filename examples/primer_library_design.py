"""Primer library design: why main primer pairs are scarce.

Generates a library of mutually-compatible 20-base primers under the
constraints the paper describes (balanced GC, no long homopolymers, Tm
window, large pairwise Hamming distance), shows how the acceptance rate
collapses as the library grows, and allocates primer pairs to a pool of
partitions via the :class:`DnaPoolManager`.

Run with ``python examples/primer_library_design.py``.
"""

from repro import DnaPoolManager, PrimerConstraints, generate_primer_library


def main() -> None:
    constraints = PrimerConstraints()
    library = generate_primer_library(
        constraints, max_candidates=5000, seed=42
    )
    print(f"examined {library.candidates_examined} candidates, "
          f"accepted {len(library)} primers "
          f"(acceptance rate {library.acceptance_rate:.1%})")
    print(f"minimum pairwise Hamming distance: {library.minimum_pairwise_distance()} "
          f"(required {constraints.min_pairwise_hamming})")
    print("first three primers:")
    for primer in library.primers[:3]:
        print(f"  {primer}")

    # Allocate pairs to a multi-partition pool (the paper's 13 files).
    manager = DnaPoolManager(primer_pairs=library.pairs())
    for index in range(5):
        partition = manager.create_partition(f"file-{index}", leaf_count=64)
        print(f"partition file-{index}: forward primer {partition.config.primers.forward}")
    print(f"primer pairs consumed: {manager.allocated_pairs} "
          f"of {len(library) // 2} available")


if __name__ == "__main__":
    main()
