"""A scaled-down run of the paper's wetlab evaluation (Sections 6-8).

Builds the Alice setup — a text file split into 256-byte paragraph blocks
behind one primer pair, with updates synthesized by a second vendor at
50 000x concentration — then runs, on the wetlab channel simulator:

* pool mixing (Figure 10),
* whole-partition random access (Figure 9a),
* precise block access with an elongated primer (Figure 9b),
* decoding the updated block from a few hundred reads (Section 8).

The default scale (120 blocks, reduced read counts) finishes in well under
a minute; pass ``--full`` to run the paper-scale 587-block setup (takes a
few minutes) — this is exactly what ``benchmarks/`` does.

Run with ``python examples/alice_wetlab_evaluation.py [--full]``.
"""

import argparse

from repro.experiments.alice import AliceExperiment, AliceExperimentConfig


def build_config(full_scale: bool) -> AliceExperimentConfig:
    if full_scale:
        return AliceExperimentConfig(baseline_reads=20_000, precise_reads=8_000)
    return AliceExperimentConfig(
        block_count=120,
        twist_updated_blocks=(17, 44),
        idt_updated_blocks=(71, 103),
        baseline_reads=8_000,
        precise_reads=4_000,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run the paper-scale 587-block setup")
    arguments = parser.parse_args()

    config = build_config(arguments.full)
    experiment = AliceExperiment(config)
    target = 531 if arguments.full else 71
    print(f"partition: {experiment.partition.block_count} blocks, "
          f"{len(experiment.partition.all_molecules())} molecules")

    mixing = experiment.run_mixing("amplify-then-measure")
    print("\n[Figure 10] mixing the 50 000x-concentrated update pool:")
    print(f"  per-molecule update/original concentration after mixing: "
          f"{mixing.report.concentration_ratio:.2f}x")

    baseline = experiment.run_baseline_access(target)
    print("\n[Figure 9a] whole-partition random access:")
    print(f"  blocks represented: {len(baseline.distribution.reads_per_block)}")
    print(f"  target block {target} is {baseline.target_fraction:.2%} of the readout")

    precise = experiment.run_precise_access(target)
    print("\n[Figure 9b] precise access with the elongated primer:")
    print(f"  reads with the elongated prefix: {precise.on_prefix_fraction:.0%}")
    print(f"  on-target among prefix reads:    {precise.on_target_given_prefix:.0%}")
    print(f"  on-target overall:               {precise.on_target_fraction:.0%}")
    improvement = precise.on_target_fraction / baseline.target_fraction
    print(f"  useful-read improvement over baseline: {improvement:.0f}x")

    decoding = experiment.run_decoding(precise, reads_to_use=300)
    print("\n[Section 8] decoding from few reads:")
    print(f"  reads used: {decoding.reads_used}, "
          f"clusters consumed: {decoding.report.clusters_used}, "
          f"strands recovered: {decoding.report.strands_recovered}")
    print(f"  decoded correctly with update applied: {decoding.correct}")


if __name__ == "__main__":
    main()
