"""Serving layer walkthrough: many tenants, one wetlab, three policies.

The paper shows a single precise block access is ~141x cheaper than
whole-partition sequencing (Section 7.3); this example shows what happens
when *many* callers want blocks at once.  It builds an object store,
generates a multi-tenant Zipfian request trace, and serves it three ways
with the discrete-event simulator of :mod:`repro.service`:

1. ``unbatched``   — every request pays its own PCR + sequencing cycle;
2. ``batched``     — requests within a 30-minute window share one merged,
   cross-tenant-deduplicated cycle;
3. ``batched+cache`` — decoded blocks additionally land in an LRU cache,
   so hot objects skip the wetlab entirely.

All three serve byte-identical data; only the wetlab bill and the
latency distribution change.

Run with ``PYTHONPATH=src python examples/service_simulation.py``.
"""

from repro import (
    DnaVolume,
    ObjectStore,
    ServiceConfig,
    ServiceSimulator,
    VolumeConfig,
)
from repro.service import policy_latency_comparison
from repro.workloads import multi_tenant_trace, object_corpus


def main() -> None:
    # An object store striped over partitions created on demand.
    volume = DnaVolume(
        config=VolumeConfig(partition_leaf_count=128, stripe_blocks=8, stripe_width=4)
    )
    store = ObjectStore(volume)
    block_size = volume.block_size
    corpus = object_corpus(
        {f"doc-{i:03d}": block_size * (1 + i % 6) for i in range(40)}
    )
    for name, data in corpus.items():
        store.put(name, data)
    catalog = {name: len(data) for name, data in corpus.items()}
    print(
        f"stored {len(catalog)} objects over {len(volume.partition_names)} "
        f"partitions ({volume.allocated_blocks()} blocks of {block_size} B)"
    )

    # 25 tenants issue 1500 requests over one simulated day; popularity is
    # Zipfian, so tenants keep colliding on the same hot objects.
    trace = multi_tenant_trace(
        catalog, tenants=25, requests=1500, duration_hours=24.0, seed=42
    )
    print(f"trace: {len(trace)} requests from 25 tenants over 24 h\n")

    simulator = ServiceSimulator(
        store,
        config=ServiceConfig(
            window_hours=0.5,
            reads_per_block=30,
            sequencer="nanopore",
            cache_capacity_bytes=block_size * 64,
        ),
    )
    reports = simulator.compare(trace)

    header = (
        f"{'policy':<15} {'cycles':>6} {'PCR':>6} {'reads':>9} "
        f"{'amp':>6} {'p50 h':>7} {'p99 h':>7} {'hit rate':>9}"
    )
    print(header)
    print("-" * len(header))
    for policy, report in reports.items():
        hit_rate = f"{report.cache.hit_rate:8.1%}" if report.cache else "      --"
        print(
            f"{policy:<15} {report.batches:>6} {report.pcr_reactions:>6} "
            f"{report.sequenced_reads:>9} {report.amplification_factor:>6.2f} "
            f"{report.latency.p50:>7.2f} {report.latency.p99:>7.2f} {hit_rate:>9}"
        )

    # Every policy decoded identical bytes — the cheapest one wins.
    assert len({report.checksum for report in reports.values()}) == 1
    unbatched, cached = reports["unbatched"], reports["batched+cache"]
    comparison = policy_latency_comparison(unbatched, cached)
    print(
        f"\nbatching+caching: "
        f"{unbatched.pcr_reactions / max(cached.pcr_reactions, 1):.1f}x fewer "
        f"PCR reactions, "
        f"{unbatched.sequenced_reads / max(cached.sequenced_reads, 1):.1f}x fewer "
        f"sequenced reads, "
        f"{comparison.reduction:.1f}x lower mean latency, identical bytes"
    )


if __name__ == "__main__":
    main()
